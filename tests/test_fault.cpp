// test_fault.cpp — the fault engine end to end: deterministic plans, the
// simulator-side Injector, host crash-restart, the client-side Supervisor,
// and the chaos acceptance suite.
//
// The acceptance contract is the paper's snap-stabilization statement read
// through the fault engine: sessions caught inside fault windows reach a
// *terminal* outcome (never a silent hang), sessions submitted at or after
// the last window's close complete correctly, and the same (seed, plan)
// replays bit-identically — any failure prints the one-line repro
// (plan.repro_line()) that pins the schedule it executed.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "sim/simulator.hpp"
#include "svc/client.hpp"
#include "svc/host.hpp"
#include "svc/supervisor.hpp"

namespace snapstab::fault {
namespace {

using sim::Simulator;

sim::Topology make_topo(const std::string& name, int n, std::uint64_t seed) {
  if (name == "ring") return sim::Topology::ring(n);
  if (name == "complete") return sim::Topology::complete(n);
  return sim::Topology::random_tree(n, seed);
}

std::unique_ptr<Simulator> pif_world(const sim::Topology& topo,
                                     std::uint64_t seed) {
  auto sim = svc::service_world(topo, 1, seed, [](sim::ProcessId p) {
    svc::HostConfig cfg;
    cfg.id = p + 1;
    return cfg;
  });
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 1));
  return sim;
}

// The chaos campaign's plan shape: every fault kind, windows dense enough
// to overlap, all inside a short horizon so each test drains it.
FaultPlanSpec chaos_spec(std::uint64_t seed) {
  FaultPlanSpec fs;
  fs.seed = seed;
  fs.horizon = 4'000;
  fs.min_len = 100;
  fs.max_len = 600;
  fs.crash_windows = 2;
  fs.garbage_windows = 2;
  fs.loss_windows = 1;
  fs.duplicate_windows = 1;
  fs.partition_windows = 1;
  return fs;
}

// The storm campaign's spec: all four correlated patterns, anchored inside
// a short horizon so each test drains the schedule.
FaultPlanSpec storm_spec(std::uint64_t seed) {
  FaultPlanSpec fs;
  fs.seed = seed;
  fs.horizon = 4'000;
  fs.min_len = 100;
  fs.max_len = 600;
  PatternSpec roll;
  roll.kind = PatternKind::RollingPartition;
  roll.begin = 200;
  roll.span = 1'500;
  roll.count = 3;
  roll.len = 300;
  PatternSpec crash;
  crash.kind = PatternKind::CrashStorm;
  crash.begin = 800;
  crash.span = 1'200;
  crash.count = 3;
  crash.len = 250;
  PatternSpec flap;
  flap.kind = PatternKind::FlappingLink;
  flap.begin = 400;
  flap.count = 3;
  flap.len = 150;
  flap.period = 500;
  PatternSpec casc;
  casc.kind = PatternKind::Cascade;
  casc.begin = 1'600;
  casc.count = 2;
  casc.len = 200;
  casc.lag_max = 400;
  fs.patterns = {roll, crash, flap, casc};
  return fs;
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

// Order-sensitive digest over every observation the run emitted — the
// replay pin's notion of "bit-identical".
std::uint64_t log_digest(const Simulator& sim) {
  std::uint64_t h = 14695981039346656037ull;
  for (const auto& e : sim.log().events()) {
    h = fnv_mix(h, e.step);
    h = fnv_mix(h, static_cast<std::uint64_t>(e.process));
    h = fnv_mix(h, static_cast<std::uint64_t>(e.layer));
    h = fnv_mix(h, static_cast<std::uint64_t>(e.kind));
    h = fnv_mix(h, static_cast<std::uint64_t>(e.peer));
    h = fnv_mix(h, static_cast<std::uint64_t>(e.value.as_int(-1)));
    if (e.value.is_text())
      for (const char c : e.value.as_text())
        h = fnv_mix(h, static_cast<unsigned char>(c));
  }
  return h;
}

// ---------------------------------------------------------------------------
// FaultPlan: pure compilation, bounds, ordering, repro line.
// ---------------------------------------------------------------------------

TEST(FaultPlan, CompileIsAPureFunctionOfSpecAndTopology) {
  const sim::Topology topo = sim::Topology::ring(8);
  const FaultPlanSpec spec = chaos_spec(42);
  const FaultPlan a = FaultPlan::compile(spec, topo);
  const FaultPlan b = FaultPlan::compile(spec, topo);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.windows().size(), b.windows().size());
  EXPECT_EQ(a.repro_line(), b.repro_line());

  FaultPlanSpec other = spec;
  other.seed = 43;
  const FaultPlan c = FaultPlan::compile(other, topo);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(FaultPlan, WindowsRespectSpecBoundsAndEventsAreSorted) {
  const sim::Topology topo = sim::Topology::ring(8);
  const FaultPlanSpec spec = chaos_spec(7);
  const FaultPlan plan = FaultPlan::compile(spec, topo);
  ASSERT_EQ(static_cast<int>(plan.windows().size()), spec.total_windows());
  for (const FaultWindow& w : plan.windows()) {
    EXPECT_LT(w.begin, spec.horizon);
    EXPECT_GE(w.end - w.begin, spec.min_len);
    EXPECT_LE(w.end - w.begin, spec.max_len);
    EXPECT_LE(w.end, plan.last_end());
    EXPECT_GE(w.begin, plan.first_begin());
    if (w.kind == FaultKind::CrashRestart) {
      EXPECT_GE(w.process, 0);
      EXPECT_LT(w.process, 8);
    }
    if (w.kind == FaultKind::ChannelGarbage || w.kind == FaultKind::EdgeLoss ||
        w.kind == FaultKind::EdgeDuplicate) {
      EXPECT_GE(w.edge, 0);
      EXPECT_LT(w.edge, topo.edge_count());
    }
    if (w.kind == FaultKind::LinkPartition) {
      // A real cut: neither side empty over the 8 processes.
      const std::uint64_t mask = w.partition_mask & 0xffull;
      EXPECT_NE(mask, 0u);
      EXPECT_NE(mask, 0xffull);
    }
  }
  // One open and one close per window, sorted on the step clock.
  ASSERT_EQ(plan.events().size(), plan.windows().size() * 2);
  for (std::size_t i = 1; i < plan.events().size(); ++i)
    EXPECT_LE(plan.events()[i - 1].step, plan.events()[i].step);
}

TEST(FaultPlan, AllZeroSpecCompilesInert) {
  const sim::Topology topo = sim::Topology::ring(4);
  const FaultPlan plan = FaultPlan::compile(FaultPlanSpec{}, topo);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.last_end(), 0u);

  auto sim = pif_world(topo, 1);
  Injector inj(plan);
  EXPECT_TRUE(inj.done());
  EXPECT_EQ(inj.poll(*sim), 0);
  EXPECT_EQ(sim->log().events().size(), 0u);
}

TEST(FaultPlan, ReproLinePinsSeedAndDigest) {
  const FaultPlan plan =
      FaultPlan::compile(chaos_spec(99), sim::Topology::ring(6));
  const std::string line = plan.repro_line();
  EXPECT_NE(line.find("seed=99"), std::string::npos) << line;
  EXPECT_NE(line.find("plan-digest="), std::string::npos) << line;
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(plan.digest()));
  EXPECT_NE(line.find(digest_hex), std::string::npos) << line;
}

TEST(FaultPlan, KindAndOutcomeNamesAreExhaustive) {
  EXPECT_STREQ(fault_kind_name(FaultKind::CrashRestart), "crash-restart");
  EXPECT_STREQ(fault_kind_name(FaultKind::LinkPartition), "link-partition");
  EXPECT_STREQ(fault_kind_name(FaultKind::LinkDown), "link-down");
  EXPECT_STREQ(pattern_kind_name(PatternKind::RollingPartition),
               "rolling-partition");
  EXPECT_STREQ(pattern_kind_name(PatternKind::CrashStorm), "crash-storm");
  EXPECT_STREQ(pattern_kind_name(PatternKind::FlappingLink), "flapping-link");
  EXPECT_STREQ(pattern_kind_name(PatternKind::Cascade), "cascade");
  EXPECT_STREQ(svc::session_outcome_name(svc::SessionOutcome::Ok), "ok");
  EXPECT_STREQ(svc::session_outcome_name(svc::SessionOutcome::GaveUp),
               "gave-up");
  EXPECT_STREQ(svc::breaker_state_name(svc::BreakerState::Closed), "closed");
  EXPECT_STREQ(svc::breaker_state_name(svc::BreakerState::Open), "open");
  EXPECT_STREQ(svc::breaker_state_name(svc::BreakerState::HalfOpen),
               "half-open");
  EXPECT_STREQ(sim::obs_kind_name(sim::ObsKind::Fault), "fault");
}

// ---------------------------------------------------------------------------
// Correlated storm patterns: purity, per-kind shape, the draw-after
// contract that keeps storms-off plans bit-identical, and inertness.
// ---------------------------------------------------------------------------

TEST(FaultPatterns, CompileIsPureAndEachKindHasItsShape) {
  const sim::Topology topo = sim::Topology::ring(6);
  const FaultPlanSpec spec = storm_spec(42);
  const FaultPlan a = FaultPlan::compile(spec, topo);
  const FaultPlan b = FaultPlan::compile(spec, topo);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.repro_line(), b.repro_line());

  int partitions = 0, crashes = 0, downs = 0, garbage = 0;
  for (const FaultWindow& w : a.windows()) {
    switch (w.kind) {
      case FaultKind::LinkPartition: {
        ++partitions;
        // A real sweeping cut: neither side empty.
        const std::uint64_t mask = w.partition_mask & 0x3full;
        EXPECT_NE(mask, 0u);
        EXPECT_NE(mask, 0x3full);
        break;
      }
      case FaultKind::CrashRestart:
        ++crashes;
        EXPECT_GE(w.process, 0);
        EXPECT_LT(w.process, 6);
        break;
      case FaultKind::LinkDown:
        ++downs;
        EXPECT_GE(w.edge, 0);
        EXPECT_LT(w.edge, topo.edge_count());
        break;
      case FaultKind::ChannelGarbage:
        ++garbage;
        break;
      default:
        break;
    }
  }
  // With n=6 and count=3 every 2-process sweep segment is non-trivial.
  EXPECT_EQ(partitions, 3);
  // 3 storm crashes + 1 cascade trigger.
  EXPECT_EQ(crashes, 4);
  // 3 flap phases x both directions of the link.
  EXPECT_EQ(downs, 6);
  // 2 cascade followers.
  EXPECT_EQ(garbage, 2);
  // Events stay one open + one close per window, sorted.
  ASSERT_EQ(a.events().size(), a.windows().size() * 2);
  for (std::size_t i = 1; i < a.events().size(); ++i)
    EXPECT_LE(a.events()[i - 1].step, a.events()[i].step);
}

TEST(FaultPatterns, CrashStormHitsDistinctHosts) {
  const sim::Topology topo = sim::Topology::complete(5);
  FaultPlanSpec fs;
  fs.seed = 17;
  PatternSpec storm;
  storm.kind = PatternKind::CrashStorm;
  storm.begin = 100;
  storm.span = 1'000;
  storm.count = 5;
  storm.len = 200;
  fs.patterns = {storm};
  const FaultPlan plan = FaultPlan::compile(fs, topo);
  ASSERT_EQ(plan.windows().size(), 5u);
  std::vector<sim::ProcessId> victims;
  std::uint64_t prev_begin = 0;
  for (const FaultWindow& w : plan.windows()) {
    ASSERT_EQ(w.kind, FaultKind::CrashRestart);
    EXPECT_EQ(w.end - w.begin, 200u);
    EXPECT_GE(w.begin, prev_begin);  // burst-arrival walk, sorted
    prev_begin = w.begin;
    victims.push_back(w.process);
  }
  std::sort(victims.begin(), victims.end());
  EXPECT_EQ(std::adjacent_find(victims.begin(), victims.end()),
            victims.end());  // all distinct
}

TEST(FaultPatterns, FlappingLinkCoversBothDirectionsPeriodically) {
  const sim::Topology topo = sim::Topology::ring(4);
  FaultPlanSpec fs;
  fs.seed = 5;
  PatternSpec flap;
  flap.kind = PatternKind::FlappingLink;
  flap.begin = 50;
  flap.count = 4;
  flap.len = 60;
  flap.period = 200;
  flap.edge = 2;  // pinned, not drawn
  fs.patterns = {flap};
  const FaultPlan plan = FaultPlan::compile(fs, topo);
  ASSERT_EQ(plan.windows().size(), 8u);
  const sim::EdgeId rev =
      topo.edge_between(topo.edge_dst(2), topo.edge_src(2));
  for (int f = 0; f < 4; ++f) {
    const FaultWindow& fwd = plan.windows()[static_cast<std::size_t>(2 * f)];
    const FaultWindow& bwd =
        plan.windows()[static_cast<std::size_t>(2 * f + 1)];
    EXPECT_EQ(fwd.begin, 50u + 200u * static_cast<std::uint64_t>(f));
    EXPECT_EQ(fwd.begin, bwd.begin);
    EXPECT_EQ(fwd.kind, FaultKind::LinkDown);
    EXPECT_EQ(bwd.kind, FaultKind::LinkDown);
    EXPECT_EQ(std::min(fwd.edge, bwd.edge), std::min<sim::EdgeId>(2, rev));
    EXPECT_EQ(std::max(fwd.edge, bwd.edge), std::max<sim::EdgeId>(2, rev));
  }
}

TEST(FaultPatterns, CascadeFollowersLagTheirPredecessor) {
  const sim::Topology topo = sim::Topology::ring(5);
  FaultPlanSpec fs;
  fs.seed = 23;
  PatternSpec casc;
  casc.kind = PatternKind::Cascade;
  casc.begin = 300;
  casc.count = 4;
  casc.len = 100;
  casc.lag_max = 250;
  casc.trigger = FaultKind::CrashRestart;
  casc.follow = FaultKind::EdgeLoss;
  fs.patterns = {casc};
  const FaultPlan plan = FaultPlan::compile(fs, topo);
  ASSERT_EQ(plan.windows().size(), 5u);
  EXPECT_EQ(plan.windows()[0].kind, FaultKind::CrashRestart);
  EXPECT_EQ(plan.windows()[0].begin, 300u);
  std::uint64_t prev = 300;
  for (std::size_t i = 1; i < 5; ++i) {
    const FaultWindow& w = plan.windows()[i];
    EXPECT_EQ(w.kind, FaultKind::EdgeLoss);
    EXPECT_GE(w.begin, prev + 1);
    EXPECT_LE(w.begin, prev + 250);
    prev = w.begin;
  }
}

TEST(FaultPatterns, PatternsDrawStrictlyAfterIndependentWindows) {
  // The bit-identity contract: adding patterns must not move a single
  // independent window — they draw from the continuing stream.
  const sim::Topology topo = sim::Topology::ring(8);
  const FaultPlanSpec base = chaos_spec(7);
  FaultPlanSpec stormy = base;
  stormy.patterns = storm_spec(7).patterns;
  const FaultPlan plain = FaultPlan::compile(base, topo);
  const FaultPlan storm = FaultPlan::compile(stormy, topo);
  EXPECT_GT(storm.windows().size(), plain.windows().size());
  const auto key = [](const FaultWindow& w) {
    return std::tuple(static_cast<int>(w.kind), w.begin, w.end, w.process,
                      w.edge, w.partition_mask);
  };
  for (const FaultWindow& w : plain.windows()) {
    bool found = false;
    for (const FaultWindow& s : storm.windows())
      if (key(s) == key(w)) {
        found = true;
        break;
      }
    EXPECT_TRUE(found) << "independent window moved by pattern compilation";
  }
}

TEST(FaultPatterns, PatternsOnlySpecIsEnabledAndEmptySpecStaysInert) {
  FaultPlanSpec fs;
  EXPECT_FALSE(fs.enabled());
  PatternSpec flap;
  flap.kind = PatternKind::FlappingLink;
  fs.patterns = {flap};
  EXPECT_TRUE(fs.enabled());
  EXPECT_EQ(fs.total_windows(), 0);

  // An inert spec stays inert through compile + injection.
  const FaultPlan plan =
      FaultPlan::compile(FaultPlanSpec{}, sim::Topology::ring(4));
  EXPECT_TRUE(plan.empty());
  auto sim = pif_world(sim::Topology::ring(4), 3);
  Injector inj(plan);
  EXPECT_TRUE(inj.done());
  EXPECT_EQ(inj.poll(*sim), 0);
  EXPECT_EQ(inj.counters().down_wipes, 0u);
}

// ---------------------------------------------------------------------------
// Injector: observations, host crash dispatch, degradation counters.
// ---------------------------------------------------------------------------

TEST(Injector, EmitsOneFaultObservationPerWindowOpen) {
  const sim::Topology topo = sim::Topology::ring(6);
  const FaultPlanSpec spec = chaos_spec(5);
  const FaultPlan plan = FaultPlan::compile(spec, topo);
  auto sim = pif_world(topo, 5);
  svc::Client client(*sim);
  Injector inj(plan);
  int guard = 0;
  while (!inj.done() && ++guard < 1'000) {
    const auto reason = sim->run(1'024, [&](Simulator& s) {
      inj.poll(s);
      return inj.done();
    });
    if (reason == Simulator::StopReason::Quiescent)
      client.submit(0, svc::PifBroadcast{Value::integer(1'000 + guard)});
  }
  ASSERT_TRUE(inj.done()) << plan.repro_line();
  int fault_obs = 0;
  for (const auto& e : sim->log().events())
    if (e.kind == sim::ObsKind::Fault) ++fault_obs;
  EXPECT_EQ(fault_obs, spec.total_windows()) << plan.repro_line();
  const auto& c = inj.counters();
  EXPECT_GT(c.crashes, 0u);
  EXPECT_GT(c.garbage_bursts, 0u);
}

TEST(HostCrashRestart, FailsLiveSessionsAndCountsDegradation) {
  auto sim = pif_world(sim::Topology::ring(3), 11);
  svc::Client client(*sim);
  bool fired = false;
  svc::SessionResult seen;
  const svc::Session s = client.submit(
      0, svc::PifBroadcast{Value::integer(1)},
      [&](const svc::SessionKey&, const svc::SessionResult& r) {
        fired = true;
        seen = r;
      });
  auto& host = sim->process_as<svc::ServiceHost>(0);
  EXPECT_EQ(host.degrade().sessions_killed, 0u);
  Rng rng(77);
  host.crash_restart(rng);
  // The live session died visibly: completion fired with completed=false,
  // and the host's graceful-degradation counters recorded the kill.
  EXPECT_TRUE(fired);
  EXPECT_FALSE(seen.completed);
  EXPECT_EQ(host.degrade().sessions_killed, 1u);
  EXPECT_EQ(host.degrade().crashes, 1u);
  EXPECT_EQ(client.state(s), svc::SessionState::Done);
}

// ---------------------------------------------------------------------------
// Supervisor: terminal outcomes, retries, forced settlement.
// ---------------------------------------------------------------------------

TEST(Supervisor, HealthyRequestSettlesOkFirstAttempt) {
  auto sim = pif_world(sim::Topology::ring(4), 21);
  svc::Client client(*sim);
  svc::Supervisor sup(client);
  const auto t = sup.supervise(1, svc::PifBroadcast{Value::integer(5)});
  EXPECT_FALSE(sup.terminal(t));
  ASSERT_TRUE(sup.run_all());
  ASSERT_TRUE(sup.terminal(t));
  EXPECT_EQ(sup.outcome(t), svc::SessionOutcome::Ok);
  EXPECT_EQ(sup.attempts(t), 1);
  EXPECT_EQ(sup.result(t).value, Value::integer(5));
  EXPECT_EQ(sup.stats().ok, 1u);
  EXPECT_EQ(sup.live(), 0);
}

TEST(Supervisor, CrashKilledAttemptRetriesToOk) {
  auto sim = pif_world(sim::Topology::ring(3), 22);
  svc::Client client(*sim);
  svc::SuperviseOptions so;
  so.retry_budget = 4;
  so.backoff_base = 8;
  svc::Supervisor sup(client, so);
  const auto t = sup.supervise(0, svc::PifBroadcast{Value::integer(9)});
  // Kill the first attempt by hand, then let the supervisor recover it.
  Rng rng(5);
  sim->process_as<svc::ServiceHost>(0).crash_restart(rng);
  ASSERT_TRUE(sup.run_all());
  ASSERT_TRUE(sup.terminal(t));
  EXPECT_EQ(sup.outcome(t), svc::SessionOutcome::Ok);
  EXPECT_GE(sup.attempts(t), 2);
  EXPECT_GE(sup.stats().resubmits, 1u);
  EXPECT_EQ(sup.result(t).value, Value::integer(9));
}

TEST(Supervisor, PermanentCrashingGivesUpTerminally) {
  auto sim = pif_world(sim::Topology::ring(3), 23);
  svc::Client client(*sim);
  svc::SuperviseOptions so;
  so.retry_budget = 2;
  so.backoff_base = 4;
  so.backoff_max = 8;
  svc::Supervisor sup(client, so);
  Rng rng(6);
  // Crash the host at every pump: no attempt can survive.
  sup.set_on_pump(
      [&] { sim->process_as<svc::ServiceHost>(0).crash_restart(rng); });
  const auto t = sup.supervise(0, svc::PifBroadcast{Value::integer(3)});
  svc::AwaitOptions aw;
  aw.policy.check_every = 1;
  sup.run_all(aw);
  ASSERT_TRUE(sup.terminal(t));
  EXPECT_EQ(sup.outcome(t), svc::SessionOutcome::GaveUp);
  EXPECT_EQ(sup.attempts(t), 1 + so.retry_budget);
  EXPECT_EQ(sup.stats().gave_up, 1u);
}

TEST(Supervisor, BudgetExhaustionForcesTerminalExpiry) {
  auto sim = pif_world(sim::Topology::ring(6), 24);
  svc::Client client(*sim);
  svc::SuperviseOptions so;
  so.retry_budget = 1;
  svc::Supervisor sup(client, so);
  const auto t = sup.supervise(2, svc::PifBroadcast{Value::integer(8)});
  svc::AwaitOptions aw;
  aw.max_steps = 4;  // nowhere near enough for a PIF wave
  EXPECT_FALSE(sup.run_all(aw));
  // No silent hang: the ticket is terminal even though the budget died.
  ASSERT_TRUE(sup.terminal(t));
  EXPECT_EQ(sup.outcome(t), svc::SessionOutcome::Expired);
  EXPECT_EQ(sup.live(), 0);
}

// ---------------------------------------------------------------------------
// The chaos acceptance suite: 22 seeds x 3 topologies = 66 (seed, plan)
// combos. Phase A lands supervised sessions inside the fault windows and
// requires terminal outcomes for all of them; phase B submits after the
// last window closes and requires correct completion.
// ---------------------------------------------------------------------------

using ChaosParam = std::tuple<std::uint64_t, std::string>;

class FaultChaos : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(FaultChaos, MidFaultTerminalAndPostFaultServed) {
  const auto& [seed, topo_name] = GetParam();
  const int n = 6;
  const sim::Topology topo = make_topo(topo_name, n, seed);
  auto sim = pif_world(topo, seed);
  svc::Client client(*sim);
  const FaultPlan plan = FaultPlan::compile(chaos_spec(seed), topo);
  Injector inj(plan);

  svc::SuperviseOptions so;
  so.attempt_deadline = 2'000;
  so.retry_budget = 3;
  so.backoff_base = 32;
  so.seed = seed;
  svc::Supervisor sup(client, so);
  sup.set_on_pump([&] { inj.poll(*sim); });

  // Phase A: requests in flight while the fault rages. Outcomes may be
  // anything — but they must be terminal, not hangs.
  std::vector<svc::Supervisor::Ticket> mid;
  for (int i = 0; i < 8; ++i)
    mid.push_back(
        sup.supervise(i % n, svc::PifBroadcast{Value::integer(1'000 + i)}));
  svc::AwaitOptions aw;
  aw.max_steps = 2'000'000;
  aw.policy.check_every = 16;
  sup.run_all(aw);
  for (const auto t : mid) {
    ASSERT_TRUE(sup.terminal(t)) << plan.repro_line();
    if (sup.outcome(t) == svc::SessionOutcome::Ok)
      EXPECT_TRUE(sup.result(t).completed) << plan.repro_line();
  }

  // Drain the schedule: keep the engine stepping (quiescent spells get a
  // wake-up probe) until every window has closed — the fault has ceased.
  int guard = 0;
  while (!inj.done() && ++guard < 10'000) {
    const auto reason = sim->run(2'048, [&](Simulator& s) {
      inj.poll(s);
      return inj.done();
    });
    if (reason == Simulator::StopReason::Quiescent)
      client.submit(0, svc::PifBroadcast{Value::integer(900'000 + guard)});
  }
  ASSERT_TRUE(inj.done()) << plan.repro_line();
  ASSERT_GE(sim->step_count(), plan.last_end()) << plan.repro_line();

  // Phase B: the snap-stabilization promise — every request submitted
  // after the fault ceased completes correctly.
  std::vector<svc::Session> post;
  std::vector<Value> payloads;
  for (int i = 0; i < 2 * n; ++i) {
    const Value v = Value::integer(5'000 + i);
    post.push_back(client.submit(i % n, svc::PifBroadcast{v}));
    payloads.push_back(v);
  }
  svc::AwaitOptions bw;
  bw.max_steps = 5'000'000;
  ASSERT_TRUE(client.run_until(post, bw)) << plan.repro_line();
  for (std::size_t i = 0; i < post.size(); ++i) {
    const svc::SessionResult r = client.result(post[i]);
    EXPECT_TRUE(r.completed) << plan.repro_line();
    EXPECT_EQ(r.value, payloads[i]) << plan.repro_line();
  }
}

std::string chaos_name(const ::testing::TestParamInfo<ChaosParam>& info) {
  return std::get<1>(info.param) + "_seed" +
         std::to_string(std::get<0>(info.param));
}

std::vector<ChaosParam> chaos_params() {
  std::vector<ChaosParam> out;
  for (const char* topo : {"ring", "complete", "tree"})
    for (std::uint64_t seed = 1; seed <= 22; ++seed)
      out.emplace_back(seed, topo);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Campaign, FaultChaos,
                         ::testing::ValuesIn(chaos_params()), chaos_name);

// ---------------------------------------------------------------------------
// The storm acceptance suite: correlated patterns (rolling partitions,
// crash storms, flapping links, cascades) against a supervisor running its
// full resilience stack — circuit breaker AND hedged resubmits. Same
// phase structure as FaultChaos: mid-storm sessions reach terminal
// outcomes, post-storm sessions complete correctly, every assertion
// carries the repro line.
// ---------------------------------------------------------------------------

class StormChaos : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(StormChaos, MidStormTerminalAndPostStormServed) {
  const auto& [seed, topo_name] = GetParam();
  const int n = 6;
  const sim::Topology topo = make_topo(topo_name, n, seed);
  auto sim = pif_world(topo, seed);
  svc::Client client(*sim);
  const FaultPlan plan = FaultPlan::compile(storm_spec(seed), topo);
  Injector inj(plan);

  svc::SuperviseOptions so;
  so.attempt_deadline = 2'000;
  so.retry_budget = 3;
  so.backoff_base = 32;
  so.seed = seed;
  so.breaker.enabled = true;
  so.breaker.failure_threshold = 2;
  so.breaker.open_cooldown = 512;
  so.hedge.enabled = true;
  so.hedge.hedge_after = 1'200;
  svc::Supervisor sup(client, so);
  sup.set_on_pump([&] { inj.poll(*sim); });

  // Phase A: requests in flight while the storm rages — terminal, always.
  std::vector<svc::Supervisor::Ticket> mid;
  for (int i = 0; i < 8; ++i)
    mid.push_back(
        sup.supervise(i % n, svc::PifBroadcast{Value::integer(2'000 + i)}));
  svc::AwaitOptions aw;
  aw.max_steps = 2'000'000;
  aw.policy.check_every = 16;
  sup.run_all(aw);
  for (const auto t : mid) {
    ASSERT_TRUE(sup.terminal(t)) << plan.repro_line();
    if (sup.outcome(t) == svc::SessionOutcome::Ok)
      EXPECT_TRUE(sup.result(t).completed) << plan.repro_line();
  }

  // Drain the storm schedule.
  int guard = 0;
  while (!inj.done() && ++guard < 10'000) {
    const auto reason = sim->run(2'048, [&](Simulator& s) {
      inj.poll(s);
      return inj.done();
    });
    if (reason == Simulator::StopReason::Quiescent)
      client.submit(0, svc::PifBroadcast{Value::integer(900'000 + guard)});
  }
  ASSERT_TRUE(inj.done()) << plan.repro_line();
  ASSERT_GE(sim->step_count(), plan.last_end()) << plan.repro_line();

  // Phase B: snap-stabilization — post-storm requests complete correctly.
  std::vector<svc::Session> post;
  std::vector<Value> payloads;
  for (int i = 0; i < 2 * n; ++i) {
    const Value v = Value::integer(7'000 + i);
    post.push_back(client.submit(i % n, svc::PifBroadcast{v}));
    payloads.push_back(v);
  }
  svc::AwaitOptions bw;
  bw.max_steps = 5'000'000;
  ASSERT_TRUE(client.run_until(post, bw)) << plan.repro_line();
  for (std::size_t i = 0; i < post.size(); ++i) {
    const svc::SessionResult r = client.result(post[i]);
    EXPECT_TRUE(r.completed) << plan.repro_line();
    EXPECT_EQ(r.value, payloads[i]) << plan.repro_line();
  }
}

std::vector<ChaosParam> storm_params() {
  std::vector<ChaosParam> out;
  for (const char* topo : {"ring", "complete", "tree"})
    for (std::uint64_t seed = 101; seed <= 108; ++seed)
      out.emplace_back(seed, topo);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Campaign, StormChaos,
                         ::testing::ValuesIn(storm_params()), chaos_name);

// ---------------------------------------------------------------------------
// Replay: identical (seed, plan) runs are bit-identical on the Simulator —
// same observation stream, same step count, same injector counters.
// ---------------------------------------------------------------------------

struct ReplayResult {
  std::uint64_t digest = 0;
  std::uint64_t steps = 0;
  Injector::Counters counters;
};

ReplayResult run_replay(std::uint64_t seed, const std::string& topo_name,
                        const FaultPlanSpec& spec, bool resilience_stack) {
  const int n = 6;
  const sim::Topology topo = make_topo(topo_name, n, seed);
  auto sim = pif_world(topo, seed);
  svc::Client client(*sim);
  const FaultPlan plan = FaultPlan::compile(spec, topo);
  Injector inj(plan);
  svc::SuperviseOptions so;
  so.attempt_deadline = 1'500;
  so.retry_budget = 2;
  so.seed = seed;
  if (resilience_stack) {
    so.breaker.enabled = true;
    so.breaker.failure_threshold = 2;
    so.breaker.open_cooldown = 256;
    so.hedge.enabled = true;
    so.hedge.hedge_after = 1'000;
  }
  svc::Supervisor sup(client, so);
  sup.set_on_pump([&] { inj.poll(*sim); });
  for (int i = 0; i < n; ++i)
    sup.supervise(i, svc::PifBroadcast{Value::integer(100 + i)});
  svc::AwaitOptions aw;
  aw.max_steps = 500'000;
  aw.policy.check_every = 16;
  sup.run_all(aw);
  ReplayResult r;
  r.digest = log_digest(*sim);
  r.steps = sim->step_count();
  r.counters = inj.counters();
  return r;
}

void expect_bit_identical(const ReplayResult& a, const ReplayResult& b) {
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.counters.crashes, b.counters.crashes);
  EXPECT_EQ(a.counters.garbage_bursts, b.counters.garbage_bursts);
  EXPECT_EQ(a.counters.drops, b.counters.drops);
  EXPECT_EQ(a.counters.duplicates, b.counters.duplicates);
  EXPECT_EQ(a.counters.partition_wipes, b.counters.partition_wipes);
  EXPECT_EQ(a.counters.down_wipes, b.counters.down_wipes);
}

class FaultReplay : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(FaultReplay, SameSeedAndPlanReplaysBitIdentically) {
  const auto& [seed, topo_name] = GetParam();
  const ReplayResult a = run_replay(seed, topo_name, chaos_spec(seed), false);
  const ReplayResult b = run_replay(seed, topo_name, chaos_spec(seed), false);
  expect_bit_identical(a, b);
}

INSTANTIATE_TEST_SUITE_P(Campaign, FaultReplay,
                         ::testing::Values(ChaosParam{31, "ring"},
                                           ChaosParam{32, "complete"},
                                           ChaosParam{33, "tree"}),
                         chaos_name);

// The storm replay pin: the repro_line() printed by any StormChaos failure
// names a (seed, plan digest) pair that replays bit-identically — with the
// full breaker + hedging stack in the loop.
class StormReplay : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(StormReplay, SameSeedAndStormPlanReplaysBitIdentically) {
  const auto& [seed, topo_name] = GetParam();
  const ReplayResult a = run_replay(seed, topo_name, storm_spec(seed), true);
  const ReplayResult b = run_replay(seed, topo_name, storm_spec(seed), true);
  expect_bit_identical(a, b);
}

INSTANTIATE_TEST_SUITE_P(Campaign, StormReplay,
                         ::testing::Values(ChaosParam{41, "ring"},
                                           ChaosParam{42, "complete"},
                                           ChaosParam{43, "tree"}),
                         chaos_name);

}  // namespace
}  // namespace snapstab::fault
