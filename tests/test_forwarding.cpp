// test_forwarding.cpp — the snap-stabilizing message-forwarding service.
//
// The headline property (the service's Specification): from an *arbitrary*
// initial configuration — corrupted hop handshakes, garbage-stuffed per-hop
// queues, channels pre-loaded with forged FwdData/FwdEcho traffic — every
// payload submitted after initialization is delivered to its destination
// exactly once, over lossy channels, on every topology. Ghost deliveries
// (initial-configuration garbage surfacing at some destination) are
// permitted but bounded by the number of corrupted entries the run started
// with. Also covers: shortest-path routing tables, the packed routing
// header, bounded-buffer backpressure, and the service under the thread
// runtime's codec-encoded mailboxes.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <tuple>
#include <vector>

#include "core/forward_world.hpp"
#include "core/specs.hpp"
#include "runtime/thread_runtime.hpp"
#include "sim/adversary.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab {
namespace {

using core::Forward;
using core::ForwardProcess;
using sim::RoutingTable;
using sim::Simulator;
using sim::Topology;

// ---------------------------------------------------------------------------
// Routing tables.
// ---------------------------------------------------------------------------

TEST(RoutingTable, LineRoutesAlongThePath) {
  const Topology topo = Topology::line(5);
  const RoutingTable routes(topo);
  EXPECT_EQ(routes.distance(0, 4), 4);
  EXPECT_EQ(routes.distance(4, 0), 4);
  EXPECT_EQ(routes.distance(2, 2), 0);
  for (int at = 0; at < 4; ++at) EXPECT_EQ(routes.next_hop(at, 4), at + 1);
  for (int at = 4; at > 0; --at) EXPECT_EQ(routes.next_hop(at, 0), at - 1);
}

TEST(RoutingTable, RingTakesTheShortArcAndBreaksTiesLow) {
  const Topology topo = Topology::ring(6);
  const RoutingTable routes(topo);
  EXPECT_EQ(routes.distance(0, 2), 2);
  EXPECT_EQ(routes.next_hop(0, 2), 1);
  EXPECT_EQ(routes.next_hop(0, 4), 5);  // the short way round
  // Antipodal pair: both arcs have length 3; the tie breaks toward the
  // smaller next-hop id.
  EXPECT_EQ(routes.distance(0, 3), 3);
  EXPECT_EQ(routes.next_hop(0, 3), 1);
}

TEST(RoutingTable, EveryPairConvergesOnEveryBuilder) {
  std::vector<Topology> topologies;
  topologies.push_back(Topology::complete(5));
  topologies.push_back(Topology::ring(7));
  topologies.push_back(Topology::star(6));
  topologies.push_back(Topology::random_tree(9, 3));
  topologies.push_back(Topology::from_edges(
      5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}}, "house"));
  for (const Topology& topo : topologies) {
    SCOPED_TRACE(topo.name());
    const RoutingTable routes(topo);
    const int n = topo.process_count();
    for (int a = 0; a < n; ++a)
      for (int b = 0; b < n; ++b) {
        if (a == b) {
          EXPECT_EQ(routes.distance(a, b), 0);
          continue;
        }
        // Walking the table reaches b in exactly distance(a, b) hops.
        int at = a;
        for (int hops = routes.distance(a, b); hops > 0; --hops) {
          EXPECT_EQ(routes.distance(at, b), hops);
          at = topo.peer_of(at, routes.next_index(at, b));
        }
        EXPECT_EQ(at, b);
      }
  }
}

// ---------------------------------------------------------------------------
// Routing header.
// ---------------------------------------------------------------------------

TEST(FwdHeader, PacksAndUnpacksEveryField) {
  const FwdHeader h{1234, 567, 0xFFFFFu};
  EXPECT_EQ(unpack_fwd_header(pack_fwd_header(h)), h);
  EXPECT_EQ(unpack_fwd_header(0), (FwdHeader{0, 0, 0}));
  // unpack is total: arbitrary bits yield some in-range header fields.
  const FwdHeader wild = unpack_fwd_header(-1);
  EXPECT_GE(wild.origin, 0);
  EXPECT_LE(wild.origin, 0xFFFF);
  EXPECT_GE(wild.dst, 0);
  EXPECT_LE(wild.dst, 0xFFFF);
}

// ---------------------------------------------------------------------------
// Clean-start delivery.
// ---------------------------------------------------------------------------

// Stop predicate: every submission of this test (payloads >= kBase) has
// surfaced as a delivery.
constexpr std::int64_t kBase = 1'000'000;

std::function<bool(Simulator&)> delivered_at_least(int expected) {
  // Incremental log scan — shared cursor so the per-step cost stays O(new).
  auto scanned = std::make_shared<std::size_t>(0);
  auto matched = std::make_shared<int>(0);
  return [scanned, matched, expected](Simulator& s) {
    const auto& events = s.log().events();
    for (; *scanned < events.size(); ++*scanned) {
      const auto& e = events[*scanned];
      if (e.layer == sim::Layer::Service &&
          e.kind == sim::ObsKind::FwdDeliver && e.value.as_int() >= kBase)
        ++*matched;
    }
    return *matched >= expected;
  };
}

TEST(Forwarding, SingleHopDeliversExactlyOnce) {
  auto sim = core::forward_world(Topology::line(2), 1, 1);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(1));
  ASSERT_TRUE(core::request_forward(*sim, 0, 1, Value::integer(kBase)));
  ASSERT_EQ(sim->run(100'000, delivered_at_least(1)),
            Simulator::StopReason::Predicate);
  const auto report = core::check_forward_spec(*sim);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(sim->process_as<ForwardProcess>(1).forward().delivered_count(),
            1u);
}

TEST(Forwarding, MultiHopCrossTrafficOnALine) {
  auto sim = core::forward_world(Topology::line(5), 1, 2);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(2));
  ASSERT_TRUE(core::request_forward(*sim, 0, 4, Value::integer(kBase + 0)));
  ASSERT_TRUE(core::request_forward(*sim, 4, 0, Value::integer(kBase + 1)));
  ASSERT_TRUE(core::request_forward(*sim, 1, 3, Value::integer(kBase + 2)));
  ASSERT_TRUE(core::request_forward(*sim, 2, 2, Value::integer(kBase + 3)));
  ASSERT_EQ(sim->run(2'000'000, delivered_at_least(4)),
            Simulator::StopReason::Predicate);
  const auto report = core::check_forward_spec(*sim);
  EXPECT_TRUE(report.ok()) << report.summary();
  // The relays actually relayed (0 -> 4 crosses three intermediate nodes).
  std::uint64_t relayed = 0;
  for (int p = 0; p < 5; ++p)
    relayed += sim->process_as<ForwardProcess>(p).forward().relayed_count();
  EXPECT_GE(relayed, 6u);
}

TEST(Forwarding, SelfAddressedSubmissionDeliversLocally) {
  auto sim = core::forward_world(Topology::line(2), 1, 3,
                                 Forward::Options{.hop_buffer = 2});
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(3));
  ASSERT_TRUE(core::request_forward(*sim, 0, 0, Value::integer(kBase)));
  ASSERT_TRUE(core::request_forward(*sim, 0, 0, Value::integer(kBase + 1)));
  // The local delivery queue honors the same hop_buffer bound as out-links.
  EXPECT_FALSE(core::request_forward(*sim, 0, 0, Value::integer(kBase + 2)));
  ASSERT_EQ(sim->run(10'000, delivered_at_least(2)),
            Simulator::StopReason::Predicate);
  EXPECT_TRUE(core::check_forward_spec(*sim).ok());
}

TEST(Forwarding, RejectsDestinationsOutsideTheTopology) {
  auto sim = core::forward_world(Topology::line(3), 1, 4);
  auto& fwd = sim->process_as<ForwardProcess>(0).forward();
  EXPECT_EQ(fwd.submit(Value::integer(1), -1), core::ForwardSubmit::NoRoute);
  EXPECT_EQ(fwd.submit(Value::integer(1), 3), core::ForwardSubmit::NoRoute);
}

// ---------------------------------------------------------------------------
// Bounded per-hop buffers.
// ---------------------------------------------------------------------------

TEST(Forwarding, FullFirstHopBufferRefusesWithoutLosingAcceptedPayloads) {
  auto sim = core::forward_world(Topology::line(3), 1, 5,
                                 Forward::Options{.hop_buffer = 2});
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(5));
  // Two submissions fill the first hop (one active + one queued); the third
  // is refused and records nothing.
  ASSERT_TRUE(core::request_forward(*sim, 0, 2, Value::integer(kBase + 0)));
  ASSERT_TRUE(core::request_forward(*sim, 0, 2, Value::integer(kBase + 1)));
  // submit() alone would also refuse — request_forward must not log it.
  EXPECT_FALSE(core::request_forward(*sim, 0, 2, Value::integer(kBase + 2)));
  ASSERT_EQ(sim->run(1'000'000, delivered_at_least(2)),
            Simulator::StopReason::Predicate);
  const auto report = core::check_forward_spec(*sim);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Forwarding, BackpressureStallsTheHandshakeInsteadOfDropping) {
  // Relay 1 sits between 0 and 2 with a one-slot buffer; flood it from 0.
  auto sim = core::forward_world(Topology::line(3), 1, 6,
                                 Forward::Options{.hop_buffer = 1});
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(6));
  ASSERT_TRUE(core::request_forward(*sim, 0, 2, Value::integer(kBase + 0)));
  ASSERT_EQ(sim->run(1'000'000, delivered_at_least(1)),
            Simulator::StopReason::Predicate);
  ASSERT_TRUE(core::request_forward(*sim, 0, 2, Value::integer(kBase + 1)));
  ASSERT_EQ(sim->run(1'000'000, delivered_at_least(2)),
            Simulator::StopReason::Predicate);
  const auto report = core::check_forward_spec(*sim);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------------
// Snap-stabilization: arbitrary initial configurations.
// ---------------------------------------------------------------------------

// topology family × seed; 3 families × 17 seeds = 51 fuzzed configurations.
class ForwardingSnap
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

Topology snap_topology(int family, std::uint64_t seed) {
  switch (family) {
    case 0:
      return Topology::ring(6);
    case 1:
      return Topology::random_tree(8, seed);
    default: {
      // A random connected non-tree graph: attachment tree plus chords.
      std::vector<std::pair<int, int>> edges;
      Rng rng(seed * 977 + 11);
      const int n = 7;
      for (int v = 1; v < n; ++v)
        edges.emplace_back(
            static_cast<int>(rng.below(static_cast<std::uint64_t>(v))), v);
      edges.emplace_back(static_cast<int>(rng.below(n - 1)) + 1, 0);
      edges.emplace_back(static_cast<int>(rng.below(n - 2)) + 2, 1);
      return Topology::from_edges(n, edges, "random-graph");
    }
  }
}

TEST_P(ForwardingSnap, EveryPostInitSendDeliveredExactlyOnce) {
  const auto [family, seed] = GetParam();
  const int capacity = 1 + static_cast<int>(seed % 2);  // c ∈ {1, 2}
  auto sim = core::forward_world(
      snap_topology(family, seed), static_cast<std::size_t>(capacity),
      seed * 31 + static_cast<std::uint64_t>(family));
  const int n = sim->process_count();

  // Arbitrary initial configuration: scrambled handshakes and queues,
  // channels stuffed with forged forwarding traffic.
  Rng fuzz_rng(seed * 7919 + static_cast<std::uint64_t>(family));
  sim::FuzzOptions fuzz_opts;
  fuzz_opts.flag_limit = 2 * capacity + 2;
  fuzz_opts.forward_header_n = n;
  sim::fuzz(*sim, fuzz_rng, fuzz_opts);
  const std::uint64_t budget = core::forward_ghost_budget(*sim);

  // Post-initialization sends: distinctive payloads no fuzzed message can
  // collide with, across seed-dependent multi-hop routes.
  const int submissions = 4;
  int accepted = 0;
  Rng pick(seed + 1);
  while (accepted < submissions) {
    const auto origin =
        static_cast<int>(pick.below(static_cast<std::uint64_t>(n)));
    const auto dst =
        static_cast<int>(pick.below(static_cast<std::uint64_t>(n)));
    if (core::request_forward(*sim, origin, dst,
                              Value::integer(kBase + accepted)))
      ++accepted;
  }

  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(
      seed + 2, sim::LossOptions{.rate = 0.25, .max_consecutive = 4}));
  ASSERT_EQ(sim->run(5'000'000, delivered_at_least(submissions)),
            Simulator::StopReason::Predicate)
      << "submissions not delivered from fuzzed configuration";

  const auto report = core::check_forward_spec(
      *sim, {.require_all_delivered = true, .max_ghost_deliveries = budget});
  EXPECT_TRUE(report.ok()) << report.summary();

  // Channel conservation held through fuzzing, drops and deliveries.
  const auto stats = sim->network().aggregate_channel_stats();
  EXPECT_EQ(stats.pushed,
            stats.removed() + sim->network().total_messages_in_flight());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ForwardingSnap,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Range<std::uint64_t>(1, 18)));

TEST(Forwarding, GhostDeliveriesStayWithinTheCorruptionBudget) {
  // No submissions at all: every delivery the run produces is a ghost and
  // must be attributable to a corrupted initial entry.
  auto sim = core::forward_world(Topology::ring(6), 2, 77);
  Rng fuzz_rng(77);
  sim::FuzzOptions fuzz_opts;
  fuzz_opts.flag_limit = 6;
  fuzz_opts.forward_header_n = 6;
  sim::fuzz(*sim, fuzz_rng, fuzz_opts);
  const std::uint64_t budget = core::forward_ghost_budget(*sim);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(78));
  sim->run(300'000);
  std::uint64_t ghosts = 0;
  for (const auto& e : sim->log().events())
    if (e.kind == sim::ObsKind::FwdDeliver) ++ghosts;
  EXPECT_LE(ghosts, budget);
  const auto report = core::check_forward_spec(
      *sim, {.require_all_delivered = true, .max_ghost_deliveries = budget});
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------------
// Sustained chaos: strike / submit / verify, round after round.
// ---------------------------------------------------------------------------

TEST(Forwarding, SurvivesRepeatedAdversaryStrikes) {
  auto sim = core::forward_world(Topology::ring(5), 1, 91);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(
      92, sim::LossOptions{.rate = 0.15, .max_consecutive = 4}));
  sim::Adversary adversary(93, {.flag_limit = 4});
  for (int round = 0; round < 8; ++round) {
    adversary.strike(*sim);
    const int origin = round % 5;
    const int dst = (round + 2) % 5;
    const Value payload = Value::integer(kBase + round);
    ASSERT_TRUE(core::request_forward(*sim, origin, dst, payload));
    // Snap-stabilization, per round: the payload submitted *after* this
    // strike reaches its destination. (Remnants of earlier rounds may
    // lawfully re-surface after later strikes — the paper's unexpected
    // events — so each round watches only its own payload.)
    const std::size_t mark = sim->log().events().size();
    const auto done = [&, mark](Simulator& s) {
      const auto& events = s.log().events();
      for (std::size_t i = mark; i < events.size(); ++i)
        if (events[i].kind == sim::ObsKind::FwdDeliver &&
            events[i].process == dst && events[i].value == payload)
          return true;
      return false;
    };
    ASSERT_EQ(sim->run(5'000'000, done), Simulator::StopReason::Predicate)
        << "round " << round;
    // Conservation after every strike (clear + refill) and every round of
    // drops and deliveries — the invariant the adversary must not break.
    const auto stats = sim->network().aggregate_channel_stats();
    ASSERT_EQ(stats.pushed,
              stats.removed() + sim->network().total_messages_in_flight())
        << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// The thread runtime: hops ride codec-encoded mailbox datagrams.
// ---------------------------------------------------------------------------

TEST(Forwarding, DeliversAcrossThreadRuntimeMailboxes) {
  using namespace std::chrono_literals;
  const Topology topo = Topology::ring(4);
  auto routes = std::make_shared<const RoutingTable>(topo);
  runtime::ThreadRuntime rt(topo, {.seed = 11});
  for (int p = 0; p < 4; ++p)
    rt.add_process(std::make_unique<ForwardProcess>(p, topo.degree(p),
                                                    routes));
  rt.with_process<ForwardProcess>(0, [](ForwardProcess& p) {
    return p.forward().submit(Value::integer(kBase), 2);  // two hops away
  });
  const bool ok = rt.run(
      [&rt] {
        return rt.with_process<ForwardProcess>(2, [](ForwardProcess& p) {
          return p.forward().delivered_count() >= 1;
        });
      },
      10s);
  EXPECT_TRUE(ok) << "payload did not cross the thread runtime";
  int deliveries = 0;
  for (const auto& e : rt.observations())
    if (e.kind == sim::ObsKind::FwdDeliver &&
        e.value == Value::integer(kBase)) {
      ++deliveries;
      EXPECT_EQ(e.process, 2);
      EXPECT_EQ(e.peer, 0);  // origin travels in the packed header
    }
  EXPECT_EQ(deliveries, 1);
}

}  // namespace
}  // namespace snapstab
