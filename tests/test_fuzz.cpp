// test_fuzz.cpp — arbitrary initial configurations respect the model.
#include <gtest/gtest.h>

#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace snapstab::sim {
namespace {

TEST(Fuzz, BoundedChannelsNeverOverfilled) {
  for (std::size_t cap : {1u, 2u, 4u}) {
    Simulator sim(4, cap, 1);
    for (int i = 0; i < 4; ++i)
      sim.add_process(std::make_unique<ProbeProcess>());
    Rng rng(17);
    FuzzOptions opts;
    opts.channel_fill = 1.0;
    fuzz(sim, rng, opts);
    for (int s = 0; s < 4; ++s)
      for (int d = 0; d < 4; ++d)
        if (s != d) {
          EXPECT_LE(sim.network().channel(s, d).size(), cap);
        }
  }
}

TEST(Fuzz, UnboundedChannelsGetSeveralMessages) {
  Simulator sim(2, Channel::kUnbounded, 1);
  sim.add_process(std::make_unique<ProbeProcess>());
  sim.add_process(std::make_unique<ProbeProcess>());
  Rng rng(23);
  FuzzOptions opts;
  opts.channel_fill = 1.0;
  opts.unbounded_messages = 6;
  fuzz(sim, rng, opts);
  EXPECT_GE(sim.network().channel(0, 1).size(), 1u);
  EXPECT_LE(sim.network().channel(0, 1).size(), 6u);
}

TEST(Fuzz, FlagLimitRespected) {
  Simulator sim(3, 1, 1);
  for (int i = 0; i < 3; ++i) sim.add_process(std::make_unique<ProbeProcess>());
  Rng rng(29);
  FuzzOptions opts;
  opts.channel_fill = 1.0;
  opts.flag_limit = 6;  // capacity-2 protocol: flags 0..6
  fuzz(sim, rng, opts);
  for (int s = 0; s < 3; ++s)
    for (int d = 0; d < 3; ++d) {
      if (s == d) continue;
      for (const auto& m : sim.network().channel(s, d).contents()) {
        EXPECT_GE(m.state, 0);
        EXPECT_LE(m.state, 6);
      }
    }
}

TEST(Fuzz, ProcessStatesAreRandomized) {
  // Two different fuzz seeds must produce different protocol states
  // somewhere (sanity that randomize() reaches the variables).
  auto snapshot = [](std::uint64_t seed) {
    Simulator sim(3, 1, 1);
    for (int i = 0; i < 3; ++i)
      sim.add_process(std::make_unique<core::MeStackProcess>(i + 1, 2));
    Rng rng(seed);
    fuzz(sim, rng, FuzzOptions{.channels = false});
    std::vector<int> state;
    for (int p = 0; p < 3; ++p) {
      auto& stack = sim.process_as<core::MeStackProcess>(p);
      state.push_back(static_cast<int>(stack.pif().state().request));
      state.push_back(stack.me().phase());
      state.push_back(stack.me().value());
      for (int ch = 0; ch < 2; ++ch) state.push_back(stack.pif().state().state[static_cast<std::size_t>(ch)]);
    }
    return state;
  };
  EXPECT_NE(snapshot(1), snapshot(2));
  EXPECT_EQ(snapshot(3), snapshot(3));  // and deterministic per seed
}

TEST(Fuzz, DomainsRespectedForProtocolStacks) {
  Simulator sim(4, 1, 1);
  for (int i = 0; i < 4; ++i)
    sim.add_process(std::make_unique<core::MeStackProcess>(i * 10, 3));
  Rng rng(31);
  fuzz(sim, rng);
  for (int p = 0; p < 4; ++p) {
    auto& stack = sim.process_as<core::MeStackProcess>(p);
    const auto& pst = stack.pif().state();
    for (int ch = 0; ch < 3; ++ch) {
      EXPECT_GE(pst.state[static_cast<std::size_t>(ch)], 0);
      EXPECT_LE(pst.state[static_cast<std::size_t>(ch)], stack.pif().flag_bound());
      EXPECT_GE(pst.neig_state[static_cast<std::size_t>(ch)], 0);
      EXPECT_LE(pst.neig_state[static_cast<std::size_t>(ch)],
                stack.pif().flag_bound());
    }
    EXPECT_GE(stack.me().phase(), 0);
    EXPECT_LE(stack.me().phase(), 4);
    EXPECT_GE(stack.me().value(), 0);
    EXPECT_LE(stack.me().value(), 3);  // mod-n domain {0..n-1}, n = 4
  }
}

TEST(Fuzz, ChannelOnlyAndProcessOnlyModes) {
  Simulator sim(2, 1, 1);
  sim.add_process(std::make_unique<ProbeProcess>());
  sim.add_process(std::make_unique<ProbeProcess>());
  Rng rng(37);
  fuzz(sim, rng, FuzzOptions{.processes = false, .channel_fill = 1.0});
  EXPECT_GE(sim.network().total_messages_in_flight(), 1u);

  fuzz(sim, rng, FuzzOptions{.channels = false});
  // channels untouched by the second call
  EXPECT_GE(sim.network().total_messages_in_flight(), 1u);
}

}  // namespace
}  // namespace snapstab::sim
