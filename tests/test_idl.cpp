// test_idl.cpp — Protocol IDL (Algorithm 2): Specification 2 / Theorem 3.
#include <gtest/gtest.h>

#include <memory>

#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab::core {
namespace {

using sim::Simulator;

std::unique_ptr<Simulator> idl_world(const std::vector<std::int64_t>& ids,
                                     std::uint64_t seed) {
  const int n = static_cast<int>(ids.size());
  auto sim = std::make_unique<Simulator>(n, 1, seed);
  for (int i = 0; i < n; ++i)
    sim->add_process(std::make_unique<IdlProcess>(
        ids[static_cast<std::size_t>(i)], n - 1, 1));
  return sim;
}

SpecReport check(Simulator& sim, const std::vector<std::int64_t>& ids) {
  return check_idl_spec(
      sim,
      [&sim](sim::ProcessId p) -> const Idl& {
        return sim.process_as<IdlProcess>(p).idl();
      },
      ids);
}

TEST(Idl, LearnsIdsFromCleanState) {
  const std::vector<std::int64_t> ids = {42, 17, 88, 5};
  auto sim = idl_world(ids, 1);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(2));
  request_idl(*sim, 0);
  ASSERT_EQ(sim->run(400'000,
                     [](Simulator& s) {
                       return s.process_as<IdlProcess>(0).idl().done();
                     }),
            Simulator::StopReason::Predicate);
  const Idl& idl = sim->process_as<IdlProcess>(0).idl();
  EXPECT_EQ(idl.min_id(), 5);
  // Channel k of process 0 is process k+1.
  EXPECT_EQ(idl.id_tab(0), 17);
  EXPECT_EQ(idl.id_tab(1), 88);
  EXPECT_EQ(idl.id_tab(2), 5);
  EXPECT_TRUE(check(*sim, ids).ok());
}

TEST(Idl, MinIncludesOwnId) {
  // The initiator's own identity participates in the minimum.
  const std::vector<std::int64_t> ids = {3, 17, 88};
  auto sim = idl_world(ids, 3);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(4));
  request_idl(*sim, 0);
  ASSERT_EQ(sim->run(400'000,
                     [](Simulator& s) {
                       return s.process_as<IdlProcess>(0).idl().done();
                     }),
            Simulator::StopReason::Predicate);
  EXPECT_EQ(sim->process_as<IdlProcess>(0).idl().min_id(), 3);
}

TEST(Idl, NegativeIdsSupported) {
  const std::vector<std::int64_t> ids = {-7, 0, 12};
  auto sim = idl_world(ids, 5);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(6));
  request_idl(*sim, 2);
  ASSERT_EQ(sim->run(400'000,
                     [](Simulator& s) {
                       return s.process_as<IdlProcess>(2).idl().done();
                     }),
            Simulator::StopReason::Predicate);
  EXPECT_EQ(sim->process_as<IdlProcess>(2).idl().min_id(), -7);
  EXPECT_TRUE(check(*sim, ids).ok());
}

class IdlProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, double>> {
};

TEST_P(IdlProperty, Specification2FromArbitraryConfigurations) {
  const auto [n, seed, loss] = GetParam();
  std::vector<std::int64_t> ids;
  Rng id_rng(seed * 7919);
  for (int i = 0; i < n; ++i)
    ids.push_back(id_rng.range(-500, 500) * 10 + i);  // unique by last digit

  auto sim = idl_world(ids, seed);
  Rng rng(seed ^ 0xBEEF);
  sim::fuzz(*sim, rng);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(
      seed + 1, sim::LossOptions{.rate = loss, .max_consecutive = 5}));

  // Every process runs a requested computation.
  for (int p = 0; p < n; ++p) request_idl(*sim, p);
  const auto reason = sim->run(1'500'000, [n](Simulator& s) {
    for (int p = 0; p < n; ++p) {
      const auto& idl = s.process_as<IdlProcess>(p).idl();
      if (!idl.done()) return false;
    }
    return true;
  });
  ASSERT_EQ(reason, Simulator::StopReason::Predicate);
  const auto report = check(*sim, ids);
  EXPECT_TRUE(report.ok()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IdlProperty,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(11ull, 12ull, 13ull),
                       ::testing::Values(0.0, 0.2)));

TEST(Idl, GhostComputationCarriesNoGuaranteeButTerminates) {
  // A non-started computation (Request fuzzed to In) may terminate with
  // garbage results; it must terminate nonetheless (Termination property).
  const std::vector<std::int64_t> ids = {9, 4};
  auto sim = idl_world(ids, 31);
  auto& idl0 = sim->process_as<IdlProcess>(0).idl();
  idl0.mutable_state().request = RequestState::In;
  idl0.mutable_state().min_id = -12345;  // garbage accumulator
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(32));
  const auto reason = sim->run(300'000, [](Simulator& s) {
    return s.process_as<IdlProcess>(0).idl().done();
  });
  EXPECT_EQ(reason, Simulator::StopReason::Predicate);
}

TEST(Idl, RepeatedComputationsRefreshResults) {
  // A second requested computation overwrites any stale table (used by ME,
  // which re-runs IDL every cycle).
  const std::vector<std::int64_t> ids = {50, 60};
  auto sim = idl_world(ids, 33);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(34));
  for (int round = 0; round < 3; ++round) {
    // Poison the table between computations.
    auto& idl = sim->process_as<IdlProcess>(0).idl();
    idl.mutable_state().min_id = 999;
    idl.mutable_state().id_tab[0] = 777;
    request_idl(*sim, 0);
    ASSERT_EQ(sim->run(300'000,
                       [](Simulator& s) {
                         return s.process_as<IdlProcess>(0).idl().done();
                       }),
              Simulator::StopReason::Predicate);
    EXPECT_EQ(idl.min_id(), 50);
    EXPECT_EQ(idl.id_tab(0), 60);
  }
}

TEST(Idl, GhostFeedbackInTheStartWindowCannotPoisonMinId) {
  // Regression for a subtle composition hazard (DESIGN.md §6.3): IDL's A1
  // sets PIF.Request := Wait; if PIF's A1 (the flag reset) ran only on a
  // *later* activation, a delivery in between could match the FUZZED flags,
  // fire a ghost receive-fck, and A4 would fold its garbage value into the
  // monotone minID. The stack must start the sub-protocol within the same
  // atomic activation, so the adversarial message below must find the flags
  // already reset (no match, no ghost fck).
  const std::vector<std::int64_t> ids = {100, 200};
  auto sim = idl_world(ids, 71);
  auto& proc = sim->process_as<IdlProcess>(0);
  // Corrupted PIF state: the handshake with the neighbor looks one step
  // from completion (flag 3), and a matching echo is already in flight
  // carrying a tiny garbage feedback value.
  proc.pif().mutable_state().state[0] = 3;
  sim->network().channel(1, 0).push(
      Message::pif(Value::none(), Value::integer(-999), 0, 3));

  request_idl(*sim, 0);
  sim->execute(sim::Step::tick(0));      // IDL A1 + PIF A1 atomically
  sim->execute(sim::Step::deliver(1, 0));  // the adversarial echo arrives
  EXPECT_EQ(proc.idl().min_id(), 100) << "ghost feedback poisoned minID";

  // And the computation still completes with the exact results.
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(72));
  ASSERT_EQ(sim->run(300'000,
                     [](sim::Simulator& s) {
                       return s.process_as<IdlProcess>(0).idl().done();
                     }),
            sim::Simulator::StopReason::Predicate);
  EXPECT_EQ(proc.idl().min_id(), 100);
  EXPECT_EQ(proc.idl().id_tab(0), 200);
}

TEST(Idl, FeedbackWithGarbagePayloadTolerated) {
  // During a ghost computation the feedback slot may hold any Value; A4 must
  // fold it in without crashing (total handlers).
  Pif pif(1, 1);
  Idl idl(7, 1, pif);
  struct NullBackend final : sim::ContextBackend {
    Rng rng_{1};
    int degree() const override { return 1; }
    bool send(int, const Message&) override { return true; }
    void observe(sim::Layer, sim::ObsKind, int, const Value&) override {}
    Rng& rng() override { return rng_; }
    std::uint64_t now() const override { return 0; }
  } backend;
  sim::Context ctx(backend);
  idl.on_fck(ctx, 0, Value::text("garbage"));
  EXPECT_EQ(idl.id_tab(0), 0);  // fallback id
  idl.on_fck(ctx, 0, Value::token(Token::Exit));
  EXPECT_EQ(idl.min_id(), 0);  // min folded the fallback, still no crash
}

}  // namespace
}  // namespace snapstab::core
