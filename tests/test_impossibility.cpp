// test_impossibility.cpp — Theorem 1, executed.
//
// The unbounded-channel construction must reproduce the mutual-exclusion
// bad factor (two requesting processes in the CS concurrently) against our
// own snap-stabilizing Protocol ME; the bounded counterfactual must show
// the construction is not installable and the guarantee survives.
#include <gtest/gtest.h>

#include "impossibility/construction.hpp"

namespace snapstab::impossibility {
namespace {

TEST(Impossibility, UnboundedChannelsAdmitTheBadFactor) {
  const auto report = run_unbounded_construction(/*seed=*/1);
  EXPECT_TRUE(report.both_requested_cs);
  EXPECT_TRUE(report.both_in_cs_concurrently)
      << "the Theorem-1 replay failed to reproduce the violation";
  // The replay must be byte-exact: every delivered message equals the one
  // recorded in the bad factor.
  EXPECT_EQ(report.replay_mismatches, 0u);
  // The stuffed configuration holds more messages than any capacity-1
  // channel could: that is exactly why the construction needs unboundedness.
  EXPECT_GT(report.preloaded_to_p, 1u);
  EXPECT_GT(report.preloaded_to_q, 1u);
  EXPECT_EQ(report.preload_refused, 0u);
}

TEST(Impossibility, ConstructionIsSeedIndependent) {
  for (std::uint64_t seed : {2ull, 5ull, 42ull}) {
    const auto report = run_unbounded_construction(seed);
    EXPECT_TRUE(report.both_in_cs_concurrently) << "seed=" << seed;
    EXPECT_EQ(report.replay_mismatches, 0u) << "seed=" << seed;
  }
}

TEST(Impossibility, BoundedChannelsRefuseTheStuffing) {
  const auto report = run_bounded_counterfactual(/*capacity=*/1, /*seed=*/1);
  // Most of the recorded message sequences do not fit into capacity-1
  // channels: the γ0 of Theorem 1 is not a configuration of this system.
  EXPECT_GT(report.preload_refused, 0u);
  EXPECT_LE(report.preloaded_to_p, 1u);
  EXPECT_LE(report.preloaded_to_q, 1u);
}

TEST(Impossibility, BoundedChannelsKeepTheGuarantee) {
  for (std::size_t capacity : {1u, 2u}) {
    const auto report = run_bounded_counterfactual(capacity, /*seed=*/7);
    EXPECT_FALSE(report.both_in_cs_concurrently) << "capacity=" << capacity;
    EXPECT_TRUE(report.spec_violations.empty())
        << "capacity=" << capacity << ": " << report.spec_violations.front();
  }
}

TEST(Impossibility, NarrativeDocumentsTheSteps) {
  const auto report = run_unbounded_construction(3);
  // The experiment binary prints this narration; it must mention the
  // recording, the stuffing and the outcome.
  ASSERT_GE(report.narrative.size(), 4u);
  bool mentions_stuffing = false;
  bool mentions_bad_factor = false;
  for (const auto& line : report.narrative) {
    if (line.find("stuffed") != std::string::npos) mentions_stuffing = true;
    if (line.find("bad factor") != std::string::npos)
      mentions_bad_factor = true;
  }
  EXPECT_TRUE(mentions_stuffing);
  EXPECT_TRUE(mentions_bad_factor);
}

}  // namespace
}  // namespace snapstab::impossibility
