// test_load.cpp — the load subsystem: histogram exactness against a
// sorted-vector oracle, shard-merge algebra, session recycling, and the
// sharded workload determinism pin (bit-identical aggregate JSON for any
// worker-thread count).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/stack.hpp"
#include "load/histogram.hpp"
#include "load/workload.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "svc/client.hpp"

namespace snapstab::load {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram vs the oracle: nearest-rank percentile over the sorted
// sample vector. The histogram answer must be >= the exact one (it reports
// a bucket's inclusive upper bound) and within the 1/32 relative
// quantization error above it.
// ---------------------------------------------------------------------------

std::uint64_t oracle_percentile(std::vector<std::uint64_t> sorted,
                                double pct) {
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::uint64_t>(
      std::ceil(pct / 100.0 * n));
  if (rank < 1) rank = 1;
  return sorted[static_cast<std::size_t>(rank - 1)];
}

TEST(LoadHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  std::vector<std::uint64_t> vals;
  Rng rng(41);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(32);  // one bucket per value: exact
    h.record(v);
    vals.push_back(v);
  }
  std::sort(vals.begin(), vals.end());
  for (const double pct : {1.0, 50.0, 90.0, 99.0, 99.9, 100.0})
    EXPECT_EQ(h.percentile(pct), oracle_percentile(vals, pct)) << pct;
  EXPECT_EQ(h.min(), vals.front());
  EXPECT_EQ(h.max(), vals.back());
  EXPECT_EQ(h.count(), vals.size());
}

TEST(LoadHistogram, WideRangeWithinQuantizationBound) {
  LatencyHistogram h;
  std::vector<std::uint64_t> vals;
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform-ish spread across ~12 orders of magnitude.
    const int shift = static_cast<int>(rng.below(40));
    const std::uint64_t v = rng.below(std::uint64_t{1} << shift | 1);
    h.record(v);
    vals.push_back(v);
  }
  std::sort(vals.begin(), vals.end());
  for (const double pct : {50.0, 90.0, 99.0, 99.9}) {
    const std::uint64_t exact = oracle_percentile(vals, pct);
    const std::uint64_t got = h.percentile(pct);
    EXPECT_GE(got, exact) << pct;
    EXPECT_LE(got, exact + exact / 32 + 1) << pct;
  }
  EXPECT_EQ(h.min(), vals.front());
  EXPECT_EQ(h.max(), vals.back());
}

TEST(LoadHistogram, EmptyAndSingleton) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.record(777);
  for (const double pct : {0.0, 50.0, 100.0})
    EXPECT_EQ(h.percentile(pct), 777u) << pct;  // clamped to the max
  EXPECT_EQ(h.mean(), 777.0);
}

TEST(LoadHistogram, BucketGeometryRoundTrips) {
  Rng rng(43);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t v = rng.next() >> rng.below(64);
    const int idx = LatencyHistogram::index_of(v);
    const std::uint64_t hi = LatencyHistogram::bucket_high(idx);
    EXPECT_GE(hi, v);
    EXPECT_LE(hi - v, v / 32);  // relative quantization error <= 1/32
                                // (hi - v: v + v/32 overflows near 2^64)
    if (idx > 0)
      EXPECT_LT(LatencyHistogram::bucket_high(idx - 1), v);
  }
}

// ---------------------------------------------------------------------------
// Merge is element-wise addition: associative, commutative, bit-exact.
// ---------------------------------------------------------------------------

TEST(LoadHistogram, MergeIsAssociativeAndCommutative) {
  LatencyHistogram a, b, c;
  Rng rng(44);
  for (int i = 0; i < 3000; ++i) a.record(rng.below(1u << 20));
  for (int i = 0; i < 2000; ++i) b.record(rng.below(1u << 10));
  for (int i = 0; i < 1000; ++i) c.record(rng.next() >> 20);

  LatencyHistogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c.digest(), a_bc.digest());

  LatencyHistogram ba = b;
  ba.merge(a);
  LatencyHistogram ab = a;
  ab.merge(b);
  EXPECT_EQ(ab, ba);

  LatencyHistogram empty;
  LatencyHistogram a_e = a;
  a_e.merge(empty);
  EXPECT_EQ(a_e, a);  // identity element
}

// ---------------------------------------------------------------------------
// Session recycling: a submit -> complete -> release loop leaves no
// residue in the host's session map (O(live) memory, not O(total)).
// ---------------------------------------------------------------------------

TEST(LoadRecycle, HostSessionMapStaysEmptyAcrossRecycledSessions) {
  auto sim = std::make_unique<sim::Simulator>(2, 1, 45);
  for (int i = 0; i < 2; ++i)
    sim->add_process(std::make_unique<core::PifProcess>(1, 1));
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(45));
  svc::Client client(*sim);
  auto& host = sim->process_as<svc::ServiceHost>(0);
  for (int i = 0; i < 500; ++i) {
    const svc::Session s =
        client.submit(0, svc::PifBroadcast{Value::integer(i)});
    EXPECT_EQ(host.session_count(), 1);
    ASSERT_TRUE(client.run_until(s));
    client.release(s);
    EXPECT_EQ(host.session_count(), 0) << "iteration " << i;
  }
}

// ---------------------------------------------------------------------------
// The sharded workload determinism pin: the aggregate deterministic JSON is
// bit-identical for any worker-thread count, for both arrival models and a
// forwarding-heavy mix.
// ---------------------------------------------------------------------------

WorkloadSpec mixed_spec() {
  WorkloadSpec spec;
  spec.topology = "ring";
  spec.n = 6;
  spec.seed = 1234;
  spec.set_weight(svc::ServiceId::PifBroadcast, 3);
  spec.set_weight(svc::ServiceId::Idl, 2);
  spec.set_weight(svc::ServiceId::Snapshot, 1);
  spec.set_weight(svc::ServiceId::TermDetect, 1);
  spec.set_weight(svc::ServiceId::Election, 1);
  spec.concurrency = 24;
  spec.warmup = 8;
  spec.measure = 96;
  spec.check_every = 16;
  return spec;
}

TEST(LoadSharding, MergedJsonBitIdenticalAcrossThreadCounts) {
  const WorkloadSpec spec = mixed_spec();
  const int shards = 4;
  const std::string one = run_sharded(spec, shards, 1)
                              .deterministic_json(spec);
  for (const int threads : {2, 4, 8}) {
    const std::string t = run_sharded(spec, shards, threads)
                              .deterministic_json(spec);
    EXPECT_EQ(one, t) << "threads=" << threads;
  }
  // And the run did real work: every measured completion was recorded.
  const LoadReport r = run_sharded(spec, shards, 2);
  EXPECT_GE(r.total.counters.completed, spec.measure);
  EXPECT_GE(r.total.steps_hist.count(), spec.measure);
}

TEST(LoadSharding, OpenLoopForwardMixDeterministicAndSheds) {
  WorkloadSpec spec;
  spec.topology = "complete";
  spec.n = 5;
  spec.seed = 77;
  spec.arrival = WorkloadSpec::Arrival::Open;
  spec.inter_arrival = 2;
  spec.set_weight(svc::ServiceId::PifBroadcast, 1);
  spec.set_weight(svc::ServiceId::ForwardMsg, 2);
  spec.warmup = 4;
  spec.measure = 64;
  spec.check_every = 8;
  const std::string one = run_sharded(spec, 3, 1).deterministic_json(spec);
  const std::string four = run_sharded(spec, 3, 4).deterministic_json(spec);
  EXPECT_EQ(one, four);
  const LoadReport r = run_sharded(spec, 3, 2);
  EXPECT_GE(r.total.counters.completed, spec.measure);
}

TEST(LoadSharding, CriticalSectionMixCompletesDeterministically) {
  WorkloadSpec spec;
  spec.topology = "complete";
  spec.n = 4;
  spec.seed = 55;
  spec.set_weight(svc::ServiceId::CriticalSection, 1);
  spec.concurrency = 8;
  spec.warmup = 2;
  spec.measure = 24;
  spec.check_every = 8;
  const std::string one = run_sharded(spec, 2, 1).deterministic_json(spec);
  const std::string two = run_sharded(spec, 2, 2).deterministic_json(spec);
  EXPECT_EQ(one, two);
}

// Shard results fold through the same merge whatever grouping the caller
// uses — merging per-shard results in index order equals merging a
// two-level tree (the associativity the parallel fan relies on).
TEST(LoadSharding, ShardMergeIsGroupingInvariant) {
  const WorkloadSpec spec = mixed_spec();
  std::vector<ShardResult> parts;
  for (int i = 0; i < 4; ++i) parts.push_back(run_workload_shard(spec, i, 4));

  LatencyHistogram flat;
  for (const ShardResult& p : parts) flat.merge(p.steps_hist);

  LatencyHistogram left = parts[0].steps_hist;
  left.merge(parts[1].steps_hist);
  LatencyHistogram right = parts[2].steps_hist;
  right.merge(parts[3].steps_hist);
  left.merge(right);

  EXPECT_EQ(flat, left);
  EXPECT_EQ(flat.digest(), left.digest());
}

}  // namespace
}  // namespace snapstab::load
