// test_me.cpp — Protocol ME (Algorithm 3): Specification 3 / Theorem 4,
// one test per lemma, plus the mod-(n+1) regression of DESIGN.md §6.
#include <gtest/gtest.h>

#include <memory>

#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab::core {
namespace {

using sim::Simulator;

std::unique_ptr<Simulator> me_world(const std::vector<std::int64_t>& ids,
                                    std::uint64_t seed,
                                    StackOptions options = {}) {
  const int n = static_cast<int>(ids.size());
  auto sim = std::make_unique<Simulator>(n, 1, seed);
  for (int i = 0; i < n; ++i)
    sim->add_process(std::make_unique<MeStackProcess>(
        ids[static_cast<std::size_t>(i)], n - 1, options));
  return sim;
}

Me& me_of(Simulator& sim, int p) {
  return sim.process_as<MeStackProcess>(p).me();
}

bool request_served(Simulator& s, int p) {
  return me_of(s, p).request_state() == RequestState::Done;
}

TEST(Me, SingleRequestIsServed) {
  // Lemma 12 (Start): a requesting process enters the CS in finite time.
  auto sim = me_world({30, 10, 20}, 1);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(2));
  ASSERT_TRUE(request_cs(*sim, 0));
  ASSERT_EQ(sim->run(1'000'000,
                     [](Simulator& s) { return request_served(s, 0); }),
            Simulator::StopReason::Predicate);
  const auto report = check_me_spec(*sim);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Me, LeaderItselfCanRequest) {
  auto sim = me_world({10, 30, 20}, 3);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(4));
  ASSERT_TRUE(request_cs(*sim, 0));  // process 0 holds the smallest id
  ASSERT_EQ(sim->run(1'000'000,
                     [](Simulator& s) { return request_served(s, 0); }),
            Simulator::StopReason::Predicate);
  EXPECT_TRUE(check_me_spec(*sim).ok());
}

TEST(Me, AllProcessesRequestingAreAllServedExclusively) {
  auto sim = me_world({5, 9, 2, 7}, 5);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(6));
  for (int p = 0; p < 4; ++p) ASSERT_TRUE(request_cs(*sim, p));
  const auto reason = sim->run(4'000'000, [](Simulator& s) {
    for (int p = 0; p < 4; ++p)
      if (!request_served(s, p)) return false;
    return true;
  });
  ASSERT_EQ(reason, Simulator::StopReason::Predicate);
  const auto report = check_me_spec(*sim);
  EXPECT_TRUE(report.ok()) << report.summary();
  // Every process entered the CS exactly once (one request each).
  int enters = 0;
  for (const auto& e : sim->log().events())
    if (e.layer == sim::Layer::Me && e.kind == sim::ObsKind::CsEnter &&
        e.value.as_int() == 1)
      ++enters;
  EXPECT_EQ(enters, 4);
}

TEST(Me, RequestWhileInServiceIsRejected) {
  auto sim = me_world({1, 2}, 7);
  ASSERT_TRUE(request_cs(*sim, 0));
  EXPECT_FALSE(request_cs(*sim, 0));  // paper: no re-request until Done
}

TEST(Me, FavourRotationVisitsEveryProcess) {
  // Lemma 11: Value_L is incremented (mod n) infinitely often, so the
  // favour token visits every process even when nobody requests.
  auto sim = me_world({100, 200, 300}, 9);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(10));
  std::set<int> favoured;
  for (int probe = 0; probe < 12; ++probe) {
    const int before = me_of(*sim, 0).value();
    sim->run(400'000, [before](Simulator& s) {
      return s.process_as<MeStackProcess>(0).me().value() != before;
    });
    favoured.insert(me_of(*sim, 0).value());
  }
  // Domain {0,1,2} fully visited.
  EXPECT_EQ(favoured, (std::set<int>{0, 1, 2}));
}

TEST(Me, ExitForcesEveryoneToPhaseZero) {
  // Lemma 7: before a winner enters the CS, every other process passed
  // through phase 0 (the EXIT broadcast resets them).
  auto sim = me_world({10, 20, 30}, 11);
  // Fuzz the two non-leaders to arbitrary mid-cycle phases.
  me_of(*sim, 1).mutable_state().phase = 3;
  me_of(*sim, 2).mutable_state().phase = 2;
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(12));
  ASSERT_TRUE(request_cs(*sim, 0));
  ASSERT_EQ(sim->run(1'000'000,
                     [](Simulator& s) {
                       return s.process_as<MeStackProcess>(0).me().in_cs();
                     }),
            Simulator::StopReason::Predicate);
  // The EXIT broadcast was received by both peers before the CS entry.
  int exits_received = 0;
  for (const auto& e : sim->log().events())
    if (e.kind == sim::ObsKind::RecvBrd && e.value.is_token(Token::Exit))
      ++exits_received;
  EXPECT_GE(exits_received, 2);
}

TEST(Me, GhostWinnerCannotStealTheCs) {
  // A process fuzzed to believe it is the winner (phase 3, privileges set)
  // without any request: it may execute a ghost CS once, but a requesting
  // process is still served exclusively.
  auto sim = me_world({10, 20, 30}, 13);
  auto& ghost = me_of(*sim, 2);
  ghost.mutable_state().phase = 3;
  ghost.mutable_state().request = RequestState::In;  // ghost "request"
  ghost.mutable_state().privileges = {true, true};
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(14));
  ASSERT_TRUE(request_cs(*sim, 1));
  ASSERT_EQ(sim->run(2'000'000,
                     [](Simulator& s) { return request_served(s, 1); }),
            Simulator::StopReason::Predicate);
  const auto report = check_me_spec(*sim);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Me, GhostInsideCsDelaysButDoesNotBreakExclusion) {
  // The footnote-1 adversary: a process starts *inside* a ghost CS. The
  // requesting process must wait it out (the ghost ignores messages while
  // busy) and then be served alone.
  StackOptions opts;
  opts.me.cs_length = 5;
  auto sim = me_world({10, 20}, 15, opts);
  auto& ghost = me_of(*sim, 1);
  ghost.mutable_state().cs_remaining = 5;  // mid-CS at time 0
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(16));
  ASSERT_TRUE(request_cs(*sim, 0));
  ASSERT_EQ(sim->run(2'000'000,
                     [](Simulator& s) { return request_served(s, 0); }),
            Simulator::StopReason::Predicate);
  const auto report = check_me_spec(*sim);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Me, ServesRepeatedRequestsFairly) {
  // Repeated requests from everyone: each gets the CS again and again.
  auto sim = me_world({3, 1, 2}, 17);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(18));
  std::vector<int> grants(3, 0);
  for (int p = 0; p < 3; ++p) request_cs(*sim, p);
  for (int iteration = 0; iteration < 40; ++iteration) {
    sim->run(300'000, [](Simulator& s) {
      for (int p = 0; p < 3; ++p)
        if (request_served(s, p)) return true;
      return false;
    });
    for (int p = 0; p < 3; ++p) {
      if (request_served(*sim, p)) {
        ++grants[static_cast<std::size_t>(p)];
        request_cs(*sim, p);  // immediately request again
      }
    }
  }
  const auto report = check_me_spec(*sim, {.require_liveness = false});
  EXPECT_TRUE(report.ok()) << report.summary();
  for (int p = 0; p < 3; ++p)
    EXPECT_GE(grants[static_cast<std::size_t>(p)], 2) << "p" << p;
}

TEST(Me, WinnerPredicateMatchesPaperDefinition) {
  Pif pif(2, 1);
  Idl idl(10, 2, pif);
  Me me(10, 2, pif, idl, {});
  // Case 1: leader with Value = 0.
  idl.mutable_state().min_id = 10;
  me.mutable_state().value = 0;
  EXPECT_TRUE(me.winner());
  // Case 2: leader with Value != 0.
  me.mutable_state().value = 1;
  EXPECT_FALSE(me.winner());
  // Case 3: non-leader with a privilege from the leader.
  idl.mutable_state().min_id = 4;
  idl.mutable_state().id_tab = {4, 30};
  me.mutable_state().privileges = {true, false};
  EXPECT_TRUE(me.winner());
  // Case 4: privilege from a non-leader does not count.
  me.mutable_state().privileges = {false, true};
  EXPECT_FALSE(me.winner());
}

TEST(Me, PaperFaithfulIncrementDeadlocks) {
  // DESIGN.md §6.1: with A7's literal `(Value+1) mod (n+1)`, Value_L = n
  // favours nobody and the token never advances again — requests starve.
  StackOptions faithful;
  faithful.me.paper_faithful_increment = true;
  auto sim = me_world({10, 20, 30}, 19, faithful);
  me_of(*sim, 0).mutable_state().value = 3;  // n = 3: the poison value
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(20));
  ASSERT_TRUE(request_cs(*sim, 1));
  EXPECT_EQ(sim->run(400'000,
                     [](Simulator& s) { return request_served(s, 1); }),
            Simulator::StopReason::BudgetExhausted);
  EXPECT_EQ(me_of(*sim, 0).value(), 3);  // frozen forever
}

TEST(Me, ModNFixSurvivesTheSamePoisonValue) {
  // With the mod-n fix the domain is {0..n-1}; even if fuzzing plants an
  // out-of-domain Value (possible only with the faithful flag off via
  // direct state surgery), A7 cannot be reached… instead plant n-1 and
  // verify rotation continues through 0.
  auto sim = me_world({10, 20, 30}, 21);
  me_of(*sim, 0).mutable_state().value = 2;  // last in-domain value
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(22));
  ASSERT_TRUE(request_cs(*sim, 1));
  EXPECT_EQ(sim->run(2'000'000,
                     [](Simulator& s) { return request_served(s, 1); }),
            Simulator::StopReason::Predicate);
}

TEST(Me, CsBodyRunsExactlyOncePerGrant) {
  StackOptions opts;
  int executions = 0;
  opts.me.cs_body = [&executions] { ++executions; };
  auto sim = me_world({10, 20}, 23, opts);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(24));
  ASSERT_TRUE(request_cs(*sim, 1));
  ASSERT_EQ(sim->run(2'000'000,
                     [](Simulator& s) { return request_served(s, 1); }),
            Simulator::StopReason::Predicate);
  // cs_body runs for the requested CS of p1; p0's (10) non-requesting wins
  // skip the CS entirely, so only ghost CS could add counts — none here
  // (clean start).
  EXPECT_EQ(executions, 1);
}

TEST(Me, BusyProcessBlocksDeliveries) {
  StackOptions opts;
  opts.me.cs_length = 50;
  auto sim = me_world({10, 20}, 25, opts);
  auto& stack = sim->process_as<MeStackProcess>(0);
  stack.me().mutable_state().cs_remaining = 50;
  EXPECT_TRUE(stack.busy());
  sim->network().channel(1, 0).push(Message::pif(
      Value::token(Token::Ask), Value::none(), 3, 0));
  // The random scheduler must not pick the delivery; run a while and check
  // the message is still pending.
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(26));
  sim->run(40);
  EXPECT_EQ(sim->network().channel(1, 0).size(), 1u);
}

class MeProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, double>> {
};

TEST_P(MeProperty, Specification3FromArbitraryConfigurations) {
  const auto [n, seed, loss] = GetParam();
  std::vector<std::int64_t> ids;
  for (int i = 0; i < n; ++i) ids.push_back((i * 37) % 101 + 1);

  auto sim = me_world(ids, seed);
  Rng rng(seed ^ 0xCAFE);
  sim::fuzz(*sim, rng);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(
      seed + 1, sim::LossOptions{.rate = loss, .max_consecutive = 5}));

  // Ghost computations may hold requests hostage initially; requests are
  // accepted only when Request = Done, so poke until accepted.
  std::vector<bool> requested(static_cast<std::size_t>(n), false);
  for (int p = 0; p < n; ++p)
    requested[static_cast<std::size_t>(p)] = request_cs(*sim, p);

  const auto reason = sim->run(6'000'000, [&](Simulator& s) {
    bool all_served = true;
    for (int p = 0; p < n; ++p) {
      auto& me = s.process_as<MeStackProcess>(p).me();
      auto ri = static_cast<std::size_t>(p);
      if (!requested[ri]) {
        // The fuzzed ghost computation has drained; submit the real
        // request now.
        if (me.request_state() == RequestState::Done)
          requested[ri] = request_cs(s, p);
        all_served = false;
        continue;
      }
      if (me.request_state() != RequestState::Done) all_served = false;
    }
    return all_served;
  });
  ASSERT_EQ(reason, Simulator::StopReason::Predicate);

  const auto report = check_me_spec(*sim);
  EXPECT_TRUE(report.ok()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MeProperty,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values(101ull, 102ull, 103ull),
                       ::testing::Values(0.0, 0.15)));

}  // namespace
}  // namespace snapstab::core
