// test_mutate — the mutation-point registry and the kill ladder's
// perturbation contract.
//
// The registry half pins enumeration (stable, duplicate-free, census
// matching mutate.hpp's source-of-truth table). The behavioral half pins
// the two directions of the coverage claim:
//
//   - all mutants DISARMED, the goldens are bit-identical to the pre-PR
//     recordings (the harness is zero-cost in observable behavior);
//   - each non-equivalent mutant ARMED perturbs at least one kill-ladder
//     config (a failed assertion or a changed trace digest), while the
//     declared-equivalent mutants perturb none of them.
//
// tools/mutant_hunter additionally requires the perturbation to be a *kill*
// (a failing config); here "any observable difference" is the weaker, faster
// invariant that catches a silently-disconnected mutation point.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "mutate/mutate.hpp"
#include "mutate_scenarios.hpp"

namespace snapstab {
namespace {

using mutate::ActiveSet;
using mutate::Point;
using mutatetest::KillConfig;
using mutatetest::Outcome;
using mutatetest::kill_configs;

TEST(MutateRegistry, EnumerationIsStableAndDuplicateFree) {
  EXPECT_TRUE(mutate::duplicate_ids().empty());
  const auto points = mutate::all_points();
  EXPECT_EQ(points.size(), mutate::point_count());
  EXPECT_EQ(points.size(),
            static_cast<std::size_t>(mutate::kMutationPointCount));
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LT(std::string_view(points[i - 1]->id),
              std::string_view(points[i]->id))
        << "enumeration must be strictly sorted by id";
  for (const Point* p : points) {
    EXPECT_EQ(mutate::find_point(p->id), p);
    EXPECT_NE(std::strchr(p->id, '.'), nullptr)
        << p->id << " must be dot-namespaced by core";
    EXPECT_NE(p->live, nullptr);
    EXPECT_NE(p->mutant, nullptr);
    EXPECT_STRNE(p->live, p->mutant)
        << p->id << ": a mutant identical to the live expression is dead code";
  }
  EXPECT_EQ(mutate::find_point("no.such.mutant"), nullptr);
}

TEST(MutateRegistry, CensusMatchesTheSourceOfTruthTable) {
  const auto points = mutate::all_points();
  int table_total = 0, table_equivalent = 0, seen_total = 0;
  for (const auto& expect : mutate::kExpectedCoreCounts) {
    int n = 0, eq = 0;
    for (const Point* p : points)
      if (std::strncmp(p->id, expect.prefix, std::strlen(expect.prefix)) ==
          0) {
        ++n;
        if (p->equivalent) ++eq;
      }
    EXPECT_EQ(n, expect.points) << "census drift under " << expect.prefix;
    EXPECT_EQ(eq, expect.equivalent)
        << "equivalent-count drift under " << expect.prefix;
    table_total += expect.points;
    table_equivalent += expect.equivalent;
    seen_total += n;
  }
  EXPECT_EQ(table_total, mutate::kMutationPointCount);
  EXPECT_EQ(table_equivalent, mutate::kEquivalentMutantCount);
  EXPECT_EQ(seen_total, static_cast<int>(points.size()))
      << "every registered point must live under a censused prefix";
}

TEST(MutateActiveSet, ArmDisarmProtocol) {
  ActiveSet::disarm_all();
  EXPECT_EQ(ActiveSet::armed_count(), 0u);
  EXPECT_FALSE(ActiveSet::arm("no.such.mutant"));
  EXPECT_EQ(ActiveSet::armed_count(), 0u);

  const Point* first = mutate::all_points().front();
  EXPECT_TRUE(ActiveSet::arm(first->id));
  EXPECT_EQ(ActiveSet::armed_count(), 1u);
  EXPECT_TRUE(first->on());
  const auto armed = ActiveSet::armed();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed.front(), first);
  EXPECT_TRUE(ActiveSet::disarm(first->id));
  EXPECT_FALSE(first->on());
  EXPECT_EQ(ActiveSet::armed_count(), 0u);

  {
    mutate::ScopedMutant scoped(first->id);
    EXPECT_TRUE(scoped.ok());
    EXPECT_TRUE(first->on());
  }
  EXPECT_FALSE(first->on());
  mutate::ScopedMutant bogus("no.such.mutant");
  EXPECT_FALSE(bogus.ok());
  EXPECT_EQ(ActiveSet::armed_count(), 0u);
}

TEST(MutateDisarmed, GoldensAreBitIdenticalToPrePrRecordings) {
  ActiveSet::disarm_all();
  int golden_seen = 0;
  for (const KillConfig& cfg : kill_configs()) {
    if (std::strcmp(cfg.stage, "golden") != 0) continue;
    ++golden_seen;
    const Outcome out = cfg.run();
    EXPECT_TRUE(out.pass) << cfg.name << ": " << out.detail;
  }
  EXPECT_EQ(golden_seen, 7) << "every recorded golden scenario is replayed";
}

// The perturbation sweep skips the chaos stage: those campaigns run long and
// the hunter exercises them; every mutant already perturbs a cheaper stage.
std::vector<const KillConfig*> sweep_order(const Point& p) {
  const char* dot = std::strchr(p.id, '.');
  const std::string core(p.id, dot ? static_cast<std::size_t>(dot - p.id)
                                   : std::strlen(p.id));
  std::vector<const KillConfig*> order;
  for (int pass = 0; pass < 2; ++pass)
    for (const KillConfig& cfg : kill_configs()) {
      if (std::strcmp(cfg.stage, "chaos") == 0) continue;
      const bool mine =
          std::string(cfg.name).find("." + core) != std::string::npos;
      if ((pass == 0) == mine) order.push_back(&cfg);
    }
  return order;
}

TEST(MutateArmed, EveryMutantPerturbsOrIsEquivalent) {
  ActiveSet::disarm_all();
  std::map<std::string, Outcome> baseline;
  for (const KillConfig& cfg : kill_configs()) {
    if (std::strcmp(cfg.stage, "chaos") == 0) continue;
    const Outcome out = cfg.run();
    ASSERT_TRUE(out.pass) << "baseline " << cfg.name << ": " << out.detail;
    baseline.emplace(cfg.name, out);
  }

  for (const Point* p : mutate::all_points()) {
    mutate::ScopedMutant armed(p->id);
    ASSERT_TRUE(armed.ok());
    if (p->equivalent) {
      // An equivalent mutant must be invisible to the whole sweep.
      for (const KillConfig* cfg : sweep_order(*p)) {
        const Outcome out = cfg->run();
        const Outcome& base = baseline.at(cfg->name);
        EXPECT_TRUE(out.pass)
            << p->id << " (declared equivalent) failed " << cfg->name << ": "
            << out.detail;
        EXPECT_EQ(out.digest, base.digest)
            << p->id << " (declared equivalent) perturbed " << cfg->name;
      }
      continue;
    }
    bool perturbed = false;
    for (const KillConfig* cfg : sweep_order(*p)) {
      const Outcome out = cfg->run();
      const Outcome& base = baseline.at(cfg->name);
      if (!out.pass || out.digest != base.digest) {
        perturbed = true;
        break;
      }
    }
    EXPECT_TRUE(perturbed)
        << p->id << " is observationally dead across the non-chaos ladder — "
        << "either the point is disconnected or it needs a killing config";
  }
}

}  // namespace
}  // namespace snapstab
