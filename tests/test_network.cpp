// test_network.cpp — fully-connected topology and local channel numbering.
#include <gtest/gtest.h>

#include "sim/network.hpp"

namespace snapstab::sim {
namespace {

TEST(Network, DegreeAndCounts) {
  Network net(5, 1);
  EXPECT_EQ(net.process_count(), 5);
  EXPECT_EQ(net.edge_count(), 20);
  for (int p = 0; p < 5; ++p) EXPECT_EQ(net.degree(p), 4);
  EXPECT_EQ(net.capacity(), 1u);
  EXPECT_TRUE(net.topology().is_complete());
}

TEST(Network, LocalIndexingIsABijection) {
  // For every process, local indices 0..n-2 map onto all other processes,
  // and index_of inverts peer_of — the paper's local channel numbering.
  for (int n : {2, 3, 4, 7}) {
    Network net(n, 1);
    for (int p = 0; p < n; ++p) {
      std::vector<bool> covered(static_cast<std::size_t>(n), false);
      for (int k = 0; k < n - 1; ++k) {
        const int peer = net.peer_of(p, k);
        EXPECT_NE(peer, p);
        EXPECT_FALSE(covered[static_cast<std::size_t>(peer)]);
        covered[static_cast<std::size_t>(peer)] = true;
        EXPECT_EQ(net.index_of(p, peer), k);
      }
      covered[static_cast<std::size_t>(p)] = true;
      EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                              [](bool c) { return c; }));
    }
  }
}

TEST(Network, LocalNumbersAreLocal) {
  // The channel number of p at q generally differs from q at p.
  Network net(3, 1);
  const int idx01 = net.index_of(0, 1);
  const int idx10 = net.index_of(1, 0);
  EXPECT_EQ(idx01, 0);
  EXPECT_EQ(idx10, 1);
}

TEST(Network, ChannelsAreDirectional) {
  Network net(2, 1);
  net.channel(0, 1).push(Message::naive_brd(Value::integer(1)));
  EXPECT_EQ(net.channel(0, 1).size(), 1u);
  EXPECT_TRUE(net.channel(1, 0).empty());
}

TEST(Network, NonemptyChannelsTracksContent) {
  Network net(3, 1);
  EXPECT_TRUE(net.nonempty_channels().empty());
  net.channel(0, 2).push(Message::naive_brd(Value::none()));
  net.channel(2, 1).push(Message::naive_brd(Value::none()));
  const auto pairs = net.nonempty_channels();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<ProcessId, ProcessId>{0, 2}));
  EXPECT_EQ(pairs[1], (std::pair<ProcessId, ProcessId>{2, 1}));
  EXPECT_EQ(net.total_messages_in_flight(), 2u);
}

TEST(Network, UnboundedCapacityPropagates) {
  Network net(2, Channel::kUnbounded);
  EXPECT_TRUE(net.channel(0, 1).unbounded());
  EXPECT_TRUE(net.channel(1, 0).unbounded());
}

}  // namespace
}  // namespace snapstab::sim
