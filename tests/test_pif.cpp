// test_pif.cpp — Protocol PIF (Algorithm 1): one test per proof obligation.
//
// Lemma 1  (Start)        -> StartsOnRequest
// Lemma 2  (progress)     -> StateAdvancesWhileInProgress
// Lemma 3  (Termination)  -> NonStartedComputationsTerminate, QuiescesAfterRequestsStop
// Lemma 4  (genuine 2->3) -> Figure1WorstCaseWalkthrough, StaleDataNeverFakesABroadcast
// Lemma 5  (Correctness)  -> SpecHoldsFromCleanState / FromCorruptedState
// Lemma 6  (Decision)     -> ExactlyOneFeedbackPerNeighbor
// Property 1 (flush)      -> Property1FlushesInitiatorChannels
#include <gtest/gtest.h>

#include <memory>

#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab::core {
namespace {

using sim::Simulator;
using sim::Step;

std::unique_ptr<Simulator> pif_world(int n, std::uint64_t seed,
                                     int capacity = 1) {
  auto sim = std::make_unique<Simulator>(
      n, static_cast<std::size_t>(capacity), seed);
  for (int i = 0; i < n; ++i)
    sim->add_process(std::make_unique<PifProcess>(n - 1, capacity));
  return sim;
}

bool pif_done(Simulator& s, int p) {
  return s.process_as<PifProcess>(p).pif().done();
}

TEST(Pif, ConstructorRejectsZeroCapacity) {
  EXPECT_DEATH(Pif(1, 0), "capacity");
}

TEST(Pif, FlagBoundIsTwoCPlusTwo) {
  EXPECT_EQ(Pif(1, 1).flag_bound(), 4);  // the paper's {0..4}
  EXPECT_EQ(Pif(1, 2).flag_bound(), 6);
  EXPECT_EQ(Pif(3, 5).flag_bound(), 12);
}

TEST(Pif, StartsOnRequest) {
  // Lemma 1: when Request = Wait, the starting action eventually executes.
  auto sim = pif_world(2, 1);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(2));
  request_pif(*sim, 0, Value::text("m"));
  EXPECT_EQ(sim->process_as<PifProcess>(0).pif().request_state(),
            RequestState::Wait);
  sim->run(50, [](Simulator& s) {
    return s.process_as<PifProcess>(0).pif().request_state() !=
           RequestState::Wait;
  });
  EXPECT_EQ(sim->process_as<PifProcess>(0).pif().request_state(),
            RequestState::In);
  // The Start observation was emitted with the broadcast payload.
  bool start_seen = false;
  for (const auto& e : sim->log().events())
    if (e.kind == sim::ObsKind::Start && e.process == 0 &&
        e.value == Value::text("m"))
      start_seen = true;
  EXPECT_TRUE(start_seen);
}

TEST(Pif, StartResetsAllFlags) {
  Pif pif(3, 1);
  pif.mutable_state().state = {4, 2, 1};
  pif.request(Value::integer(1));

  // Minimal context backend: discard sends, record nothing.
  struct NullBackend final : sim::ContextBackend {
    Rng rng_{1};
    int degree() const override { return 3; }
    bool send(int, const Message&) override { return true; }
    void observe(sim::Layer, sim::ObsKind, int, const Value&) override {}
    Rng& rng() override { return rng_; }
    std::uint64_t now() const override { return 0; }
  } backend;
  sim::Context ctx(backend);

  pif.tick(ctx);
  EXPECT_EQ(pif.request_state(), RequestState::In);
  for (int ch = 0; ch < 3; ++ch)
    EXPECT_EQ(pif.state().state[static_cast<std::size_t>(ch)], 0);
}

TEST(Pif, StateAdvancesWhileInProgress) {
  // Lemma 2: while Request = In and State[q] < 4, State[q] is eventually
  // incremented (retransmission beats loss).
  auto sim = pif_world(2, 3);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(
      3, sim::LossOptions{.rate = 0.4, .max_consecutive = 4}));
  request_pif(*sim, 0, Value::text("m"));
  // Wait for the start action (the flags reset to 0 there).
  ASSERT_EQ(sim->run(50'000,
                     [](Simulator& s) {
                       const auto& pif = s.process_as<PifProcess>(0).pif();
                       return pif.request_state() == RequestState::In;
                     }),
            Simulator::StopReason::Predicate);
  for (std::int32_t target = 1; target <= 4; ++target) {
    const auto reason = sim->run(50'000, [&](Simulator& s) {
      return s.process_as<PifProcess>(0).pif().state().state[0] >= target;
    });
    ASSERT_EQ(reason, Simulator::StopReason::Predicate)
        << "never reached " << target;
  }
  EXPECT_EQ(sim->process_as<PifProcess>(0).pif().state().state[0], 4);
}

TEST(Pif, SpecHoldsFromCleanState) {
  for (int n : {2, 3, 5}) {
    auto sim = pif_world(n, static_cast<std::uint64_t>(n) * 7);
    sim->set_scheduler(std::make_unique<sim::RandomScheduler>(4));
    request_pif(*sim, 0, Value::text("clean"));
    const auto reason = sim->run(
        400'000, [](Simulator& s) { return pif_done(s, 0); });
    ASSERT_EQ(reason, Simulator::StopReason::Predicate) << "n=" << n;
    const auto report = check_pif_spec(*sim);
    EXPECT_TRUE(report.ok()) << "n=" << n << ": " << report.summary();
  }
}

TEST(Pif, SpecHoldsFromCorruptedState) {
  // The snap-stabilization claim: ANY initial configuration, the started
  // computation still satisfies Specification 1.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto sim = pif_world(3, seed);
    Rng rng(seed * 1009);
    sim::fuzz(*sim, rng);
    sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 1));
    request_pif(*sim, 0, Value::text("post-fault"));
    const auto reason =
        sim->run(400'000, [](Simulator& s) { return pif_done(s, 0); });
    ASSERT_EQ(reason, Simulator::StopReason::Predicate) << "seed=" << seed;
    // Only check the started computation at p0: ghost computations at other
    // processes may decide without correctness obligations — restrict the
    // start check to p0 by filtering events? check_pif_spec checks every
    // Start; ghost processes can emit Start only if their fuzzed request was
    // Wait, and such a start must ALSO satisfy the spec (the paper makes no
    // distinction: every started computation is correct).
    const auto report = check_pif_spec(
        *sim, {.require_termination = false, .require_start = false});
    EXPECT_TRUE(report.ok()) << "seed=" << seed << ": " << report.summary();
  }
}

TEST(Pif, ExactlyOneFeedbackPerNeighbor) {
  // Lemma 6 / Decision: between start and decision the initiator generates
  // exactly one receive-fck per neighbor, and the decision follows them.
  auto sim = pif_world(4, 99);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(5));
  request_pif(*sim, 2, Value::integer(1234));
  ASSERT_EQ(sim->run(400'000, [](Simulator& s) { return pif_done(s, 2); }),
            Simulator::StopReason::Predicate);
  int fck = 0;
  std::uint64_t decide_step = 0;
  for (const auto& e : sim->log().events()) {
    if (e.process != 2) continue;
    if (e.kind == sim::ObsKind::RecvFck) ++fck;
    if (e.kind == sim::ObsKind::Decide) decide_step = e.step;
  }
  EXPECT_EQ(fck, 3);
  EXPECT_GT(decide_step, 0u);
}

TEST(Pif, NonStartedComputationsTerminate) {
  // Lemma 3 applies to every computation, including ghosts from the initial
  // configuration: eventually no process has Request = In.
  for (std::uint64_t seed = 100; seed < 112; ++seed) {
    auto sim = pif_world(3, seed);
    Rng rng(seed);
    sim::fuzz(*sim, rng);
    sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
    const auto reason = sim->run(300'000, [](Simulator& s) {
      for (int p = 0; p < s.process_count(); ++p)
        if (!pif_done(s, p)) return false;
      return true;
    });
    // Either every request drained (predicate) or the system went fully
    // quiescent, which implies the same thing.
    ASSERT_NE(reason, Simulator::StopReason::BudgetExhausted)
        << "seed=" << seed;
    for (int p = 0; p < 3; ++p) EXPECT_TRUE(pif_done(*sim, p));
  }
}

TEST(Pif, QuiescesAfterRequestsStop) {
  // Paper, end of Section 4.1: "if the requests eventually stop, the system
  // eventually contains no message."
  auto sim = pif_world(3, 5);
  Rng rng(555);
  sim::fuzz(*sim, rng);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(6));
  request_pif(*sim, 0, Value::text("final"));
  const auto reason = sim->run(500'000);
  EXPECT_EQ(reason, Simulator::StopReason::Quiescent);
  EXPECT_EQ(sim->network().total_messages_in_flight(), 0u);
}

TEST(Pif, Property1FlushesInitiatorChannels) {
  // Property 1: after a started PIF terminates at p, no message that was in
  // a channel from/to p in the starting configuration remains.
  auto sim = pif_world(3, 7);
  const Value marker = Value::text("ghost-marker");
  auto& net = sim->network();
  net.channel(1, 0).push(Message::pif(marker, marker, 2, 2));
  net.channel(0, 1).push(Message::pif(marker, marker, 1, 3));
  net.channel(2, 0).push(Message::pif(marker, marker, 0, 0));
  net.channel(0, 2).push(Message::pif(marker, marker, 3, 1));
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(8));
  request_pif(*sim, 0, Value::text("flush"));
  ASSERT_EQ(sim->run(400'000, [](Simulator& s) { return pif_done(s, 0); }),
            Simulator::StopReason::Predicate);
  for (int other : {1, 2}) {
    for (const auto& m : net.channel(other, 0).contents())
      EXPECT_NE(m.b, marker) << "stale message still inbound from p" << other;
    for (const auto& m : net.channel(0, other).contents())
      EXPECT_NE(m.b, marker) << "stale message still outbound to p" << other;
  }
}

TEST(Pif, Figure1WorstCaseWalkthrough) {
  // Reproduces Figure 1 of the paper, message by message: the adversary
  // makes p consume its three "free" increments (stale message with flag 0,
  // q's concurrent computation echoing 1, stale message with flag 2) and p
  // then waits at State = 3 until a genuine round trip completes.
  auto sim = pif_world(2, 1);
  auto& p = sim->process_as<PifProcess>(0).pif();
  auto& q = sim->process_as<PifProcess>(1).pif();
  auto& net = sim->network();

  // Adversarial initial configuration.
  net.channel(1, 0).push(
      Message::pif(Value::text("stale"), Value::text("stale"), 0, 0));
  net.channel(0, 1).push(
      Message::pif(Value::text("stale"), Value::text("stale"), 2, 1));
  q.mutable_state().neig_state[0] = 1;

  request_pif(*sim, 0, Value::text("m"));
  q.request(Value::text("mq"));  // q starts concurrently (Figure 1)

  // p starts: A1 resets State to 0; A2's send dies on the full channel p->q.
  sim->execute(Step::tick(0));
  EXPECT_EQ(p.state().state[0], 0);
  EXPECT_EQ(sim->metrics().sends_lost_full, 1u);

  // Free increment #1: the stale flag-0 echo.
  sim->execute(Step::deliver(1, 0));
  EXPECT_EQ(p.state().state[0], 1);

  // q starts its own computation and transmits with NeigState 1.
  sim->execute(Step::tick(1));
  ASSERT_EQ(net.channel(1, 0).size(), 1u);
  EXPECT_EQ(net.channel(1, 0).peek().neig_state, 1);

  // Free increment #2: q's echo of its stale NeigState 1.
  sim->execute(Step::deliver(1, 0));
  EXPECT_EQ(p.state().state[0], 2);

  // q consumes the stale flag-2 message and echoes NeigState 2.
  sim->execute(Step::deliver(0, 1));
  ASSERT_EQ(net.channel(1, 0).size(), 1u);
  EXPECT_EQ(net.channel(1, 0).peek().neig_state, 2);

  // Free increment #3: p reaches State = 3 — the last stale-reachable value.
  sim->execute(Step::deliver(1, 0));
  EXPECT_EQ(p.state().state[0], 3);

  // No receive-brd<m> has occurred at q so far: all of p's flag-3 sends died.
  for (const auto& e : sim->log().events())
    if (e.process == 1 && e.kind == sim::ObsKind::RecvBrd)
      FAIL() << "q saw a broadcast before the genuine exchange";

  // Genuine exchange: p's flag-3 message reaches q (receive-brd fires), q
  // echoes 3, p switches 3 -> 4 (receive-fck) and decides.
  sim->execute(Step::deliver(0, 1));
  bool brd = false;
  for (const auto& e : sim->log().events())
    if (e.process == 1 && e.kind == sim::ObsKind::RecvBrd &&
        e.value == Value::text("m"))
      brd = true;
  EXPECT_TRUE(brd);

  sim->execute(Step::deliver(1, 0));
  EXPECT_EQ(p.state().state[0], 4);

  sim->execute(Step::tick(0));
  EXPECT_TRUE(p.done());
}

TEST(Pif, StaleDataNeverFakesABroadcast) {
  // Lemma 4 consequence: across adversarial single-message preloads with
  // every flag combination, p's decision always implies q generated a
  // receive-brd for p's payload.
  const std::int32_t F = 4;
  for (std::int32_t s1 = 0; s1 <= F; ++s1) {
    for (std::int32_t ns1 = 0; ns1 <= F; ++ns1) {
      for (std::int32_t qneig = 0; qneig <= F; ++qneig) {
        auto sim = pif_world(2, 1);
        auto& net = sim->network();
        net.channel(1, 0).push(
            Message::pif(Value::text("junk"), Value::text("junk"), s1, ns1));
        net.channel(0, 1).push(
            Message::pif(Value::text("junk"), Value::text("junk"), ns1, s1));
        sim->process_as<PifProcess>(1).pif().mutable_state().neig_state[0] =
            qneig;
        sim->set_scheduler(std::make_unique<sim::RandomScheduler>(
            static_cast<std::uint64_t>(s1 * 25 + ns1 * 5 + qneig)));
        request_pif(*sim, 0, Value::text("real"));
        ASSERT_EQ(
            sim->run(200'000, [](Simulator& s) { return pif_done(s, 0); }),
            Simulator::StopReason::Predicate);
        const auto report = check_pif_spec(
            *sim, {.require_termination = false, .require_start = false});
        EXPECT_TRUE(report.ok()) << "s1=" << s1 << " ns1=" << ns1
                                 << " qneig=" << qneig << ": "
                                 << report.summary();
      }
    }
  }
}

TEST(Pif, RerequestRestartsCleanly) {
  // Back-to-back computations: each must independently satisfy the spec.
  auto sim = pif_world(3, 11);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(12));
  for (int round = 0; round < 5; ++round) {
    request_pif(*sim, 0, Value::integer(round));
    ASSERT_EQ(sim->run(400'000, [](Simulator& s) { return pif_done(s, 0); }),
              Simulator::StopReason::Predicate)
        << "round " << round;
  }
  const auto report = check_pif_spec(*sim);
  EXPECT_TRUE(report.ok()) << report.summary();
  // Five decisions at p0.
  int decides = 0;
  for (const auto& e : sim->log().events())
    if (e.process == 0 && e.kind == sim::ObsKind::Decide) ++decides;
  EXPECT_EQ(decides, 5);
}

TEST(Pif, InterruptedComputationRestarts) {
  // The ME layer may re-request while a computation is In (after an EXIT
  // reset). The restarted computation must still satisfy the spec.
  auto sim = pif_world(2, 13);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(14));
  request_pif(*sim, 0, Value::text("first"));
  // Run until the handshake is mid-flight (flag 1 reached, not finished).
  ASSERT_EQ(sim->run(50'000,
                     [](Simulator& s) {
                       return s.process_as<PifProcess>(0).pif().state()
                                  .state[0] >= 1;
                     }),
            Simulator::StopReason::Predicate);
  ASSERT_FALSE(pif_done(*sim, 0));
  request_pif(*sim, 0, Value::text("second"));  // interrupt + restart
  ASSERT_EQ(sim->run(200'000, [](Simulator& s) { return pif_done(s, 0); }),
            Simulator::StopReason::Predicate);
  // The first computation was abandoned mid-flight (no decision of its own),
  // so the generic window-based checker does not apply; assert directly that
  // the restarted broadcast went through.
  bool second_received = false;
  for (const auto& e : sim->log().events())
    if (e.process == 1 && e.kind == sim::ObsKind::RecvBrd &&
        e.value == Value::text("second"))
      second_received = true;
  EXPECT_TRUE(second_received);
}

TEST(Pif, IgnoresForeignMessageKinds) {
  auto sim = pif_world(2, 15);
  sim->network().channel(1, 0).push(Message::naive_brd(Value::integer(5)));
  sim->network().channel(1, 0).push(Message::seq_fck(Value::integer(5), 3));
  sim->execute(Step::deliver(1, 0));
  sim->execute(Step::deliver(1, 0));
  // No observation, no echo, no crash.
  EXPECT_TRUE(sim->log().events().empty());
  EXPECT_TRUE(sim->network().channel(0, 1).empty());
}

TEST(Pif, WildFlagsAreClampedSafely) {
  auto sim = pif_world(2, 17);
  auto& p = sim->process_as<PifProcess>(0).pif();
  sim->network().channel(1, 0).push(Message::pif(
      Value::text("wild"), Value::none(), -2'000'000'000, 2'000'000'000));
  sim->execute(Step::deliver(1, 0));
  EXPECT_GE(p.state().neig_state[0], 0);
  EXPECT_LE(p.state().neig_state[0], 4);
  // A negative sender flag is < 4, so p still echoes (harmless).
  EXPECT_EQ(sim->network().channel(0, 1).size(), 1u);
}

TEST(Pif, RandomizeStaysInDomain) {
  Rng rng(19);
  for (int cap : {1, 2, 3}) {
    Pif pif(4, cap);
    for (int i = 0; i < 200; ++i) {
      pif.randomize(rng);
      for (int ch = 0; ch < 4; ++ch) {
        EXPECT_GE(pif.state().state[static_cast<std::size_t>(ch)], 0);
        EXPECT_LE(pif.state().state[static_cast<std::size_t>(ch)],
                  pif.flag_bound());
      }
    }
  }
}

}  // namespace
}  // namespace snapstab::core
