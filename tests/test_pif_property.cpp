// test_pif_property.cpp — parameterized property sweeps for Protocol PIF.
//
// Each parameter point fuzzes an arbitrary initial configuration, runs a
// full execution under a seeded adversary (scheduler + loss) and checks the
// whole of Specification 1. This is the empirical form of Theorem 2.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab::core {
namespace {

using sim::Simulator;

// (process count, seed, loss rate, corrupted initial configuration?)
using Param = std::tuple<int, std::uint64_t, double, bool>;

class PifProperty : public ::testing::TestWithParam<Param> {};

TEST_P(PifProperty, StartedComputationSatisfiesSpecification1) {
  const auto [n, seed, loss, corrupted] = GetParam();

  Simulator sim(n, 1, seed);
  for (int i = 0; i < n; ++i)
    sim.add_process(std::make_unique<PifProcess>(n - 1, 1));
  if (corrupted) {
    Rng rng(seed ^ 0xF00Dull);
    sim::fuzz(sim, rng);
  }
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(
      seed + 1, sim::LossOptions{.rate = loss, .max_consecutive = 6}));

  // Several initiators, overlapping computations: the protocol must cope
  // with concurrent PIFs (every process can be an initiator).
  request_pif(sim, 0, Value::text("alpha"));
  if (n > 2) request_pif(sim, n - 1, Value::text("omega"));

  const auto reason = sim.run(800'000, [n](Simulator& s) {
    for (int p = 0; p < n; ++p)
      if (!s.process_as<PifProcess>(p).pif().done()) return false;
    return true;
  });
  ASSERT_NE(reason, Simulator::StopReason::BudgetExhausted);

  const auto report = check_pif_spec(
      sim, {.require_termination = true, .require_start = true});
  EXPECT_TRUE(report.ok()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PifProperty,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(1ull, 2ull, 3ull),
                       ::testing::Values(0.0, 0.15, 0.35),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<Param>& info) {
      char buf[96];
      std::snprintf(
          buf, sizeof buf, "n%d_seed%llu_loss%d_%s", std::get<0>(info.param),
          static_cast<unsigned long long>(std::get<1>(info.param)),
          static_cast<int>(std::get<2>(info.param) * 100),
          std::get<3>(info.param) ? "corrupted" : "clean");
      return std::string(buf);
    });

// All-initiators stress: every process broadcasts at once, repeatedly.
class PifAllInitiators : public ::testing::TestWithParam<int> {};

TEST_P(PifAllInitiators, ConcurrentComputationsAllComplete) {
  const int n = GetParam();
  Simulator sim(n, 1, static_cast<std::uint64_t>(n));
  for (int i = 0; i < n; ++i)
    sim.add_process(std::make_unique<PifProcess>(n - 1, 1));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(42));

  for (int round = 0; round < 3; ++round) {
    for (int p = 0; p < n; ++p)
      request_pif(sim, p, Value::integer(round * 100 + p));
    const auto reason = sim.run(2'000'000, [n](Simulator& s) {
      for (int p = 0; p < n; ++p)
        if (!s.process_as<PifProcess>(p).pif().done()) return false;
      return true;
    });
    ASSERT_EQ(reason, Simulator::StopReason::Predicate) << "round " << round;
  }
  const auto report = check_pif_spec(sim);
  EXPECT_TRUE(report.ok()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Sweep, PifAllInitiators,
                         ::testing::Values(2, 3, 4, 6));

}  // namespace
}  // namespace snapstab::core
