// test_rng.cpp — seeded RNG: determinism, bounds, fork independence.
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "common/rng.hpp"

namespace snapstab {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all seven values hit
}

TEST(Rng, RangeSingleton) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 50000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / 50000, 0.3, 0.02);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent1(23);
  Rng parent2(23);
  Rng childa = parent1.fork(1);
  Rng childb = parent2.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(childa.next(), childb.next());

  Rng parent3(23);
  Rng other = parent3.fork(2);
  Rng childc = Rng(23).fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (other.next() == childc.next()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, BitUniformitySmoke) {
  // Each of the 64 bit positions should be set roughly half the time.
  Rng rng(29);
  std::array<int, 64> counts{};
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t v = rng.next();
    for (int bit = 0; bit < 64; ++bit)
      if ((v >> bit) & 1ull) ++counts[static_cast<std::size_t>(bit)];
  }
  for (int bit = 0; bit < 64; ++bit)
    EXPECT_NEAR(static_cast<double>(counts[static_cast<std::size_t>(bit)]) /
                    samples,
                0.5, 0.03)
        << "bit " << bit;
}

TEST(Rng, SplitMix64KnownSequenceIsStable) {
  // Regression: the seeding path must stay stable across refactors, or every
  // seeded experiment in EXPERIMENTS.md silently changes.
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
  EXPECT_EQ(splitmix64(s2), second);
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace snapstab
