// test_runtime.cpp — the thread runtime: the same protocol objects under
// real concurrency, bounded lossy mailboxes and the binary wire format.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>

#include "core/stack.hpp"
#include "fault/plan.hpp"
#include "fault/runtime_injector.hpp"
#include "runtime/thread_runtime.hpp"

namespace snapstab::runtime {
namespace {

using namespace std::chrono_literals;

TEST(Mailbox, PushPopRoundTripsThroughCodec) {
  Mailbox box(2);
  const Message m = Message::pif(Value::text("payload"), Value::integer(3),
                                 2, 1);
  EXPECT_TRUE(box.try_push(m));
  const auto out = box.try_pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
}

TEST(Mailbox, FullMailboxLosesTheSentMessage) {
  Mailbox box(1);
  EXPECT_TRUE(box.try_push(Message::naive_brd(Value::integer(1))));
  EXPECT_FALSE(box.try_push(Message::naive_brd(Value::integer(2))));
  EXPECT_EQ(box.try_pop()->b.as_int(), 1);
  EXPECT_FALSE(box.try_pop().has_value());
  EXPECT_EQ(box.stats().lost_on_full, 1u);
}

TEST(Mailbox, FifoAcrossCapacity) {
  Mailbox box(3);
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(box.try_push(Message::naive_brd(Value::integer(i))));
  for (int i = 0; i < 3; ++i) EXPECT_EQ(box.try_pop()->b.as_int(), i);
}

TEST(ThreadRuntime, PifCompletesUnderRealConcurrency) {
  const int n = 4;
  ThreadRuntime rt(n, {.seed = 5});
  for (int i = 0; i < n; ++i)
    rt.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  rt.with_process<core::PifProcess>(0, [](core::PifProcess& p) {
    p.pif().request(Value::text("threaded"));
    return 0;
  });
  const bool ok = rt.run(
      [&rt] {
        return rt.with_process<core::PifProcess>(
            0, [](core::PifProcess& p) { return p.pif().done(); });
      },
      10s);
  EXPECT_TRUE(ok) << "PIF did not complete on the thread runtime";

  // Every peer generated the receive-brd event for the payload.
  int brd = 0;
  for (const auto& e : rt.observations())
    if (e.kind == sim::ObsKind::RecvBrd && e.value == Value::text("threaded"))
      ++brd;
  EXPECT_EQ(brd, n - 1);
}

TEST(ThreadRuntime, PifSurvivesInjectedLoss) {
  const int n = 3;
  ThreadRuntime rt(n, {.loss_rate = 0.3, .seed = 7});
  for (int i = 0; i < n; ++i)
    rt.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  rt.with_process<core::PifProcess>(1, [](core::PifProcess& p) {
    p.pif().request(Value::text("lossy"));
    return 0;
  });
  EXPECT_TRUE(rt.run(
      [&rt] {
        return rt.with_process<core::PifProcess>(
            1, [](core::PifProcess& p) { return p.pif().done(); });
      },
      20s));
}

TEST(ThreadRuntime, MutualExclusionHoldsWithAtomicWitness) {
  // The CS body increments an occupancy counter; any overlap of requested
  // critical sections would be visible as occupancy > 1.
  const int n = 3;
  ThreadRuntime rt(n, {.seed = 11});
  std::atomic<int> occupancy{0};
  std::atomic<int> peak{0};
  std::atomic<int> grants{0};
  for (int i = 0; i < n; ++i) {
    core::StackOptions opts;
    opts.me.cs_length = 3;
    opts.me.cs_body = [&occupancy, &peak, &grants] {
      const int now = occupancy.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      occupancy.fetch_sub(1);
      grants.fetch_add(1);
    };
    rt.add_process(
        std::make_unique<core::MeStackProcess>(100 + i, n - 1, opts));
  }
  for (int i = 0; i < n; ++i)
    rt.with_process<core::MeStackProcess>(i, [](core::MeStackProcess& s) {
      return s.me().request_cs();
    });
  const bool ok = rt.run([&grants, n] { return grants.load() >= n; }, 30s);
  EXPECT_TRUE(ok) << "not every request was served";
  EXPECT_EQ(peak.load(), 1) << "two critical sections overlapped";
}

TEST(ThreadRuntime, FuzzedInitialStatesStillServeRequests) {
  const int n = 3;
  ThreadRuntime rt(n, {.seed = 13});
  Rng rng(131);
  for (int i = 0; i < n; ++i) {
    auto proc = std::make_unique<core::MeStackProcess>(10 * (i + 1), n - 1);
    proc->randomize(rng);
    proc->me().mutable_state().cs_remaining = 0;  // no ghost CS: finite test
    rt.add_process(std::move(proc));
  }
  // Submit the request once the fuzzed ghost computation drains.
  std::atomic<bool> requested{false};
  const bool ok = rt.run(
      [&rt, &requested] {
        return rt.with_process<core::MeStackProcess>(
            0, [&requested](core::MeStackProcess& s) {
              if (!requested.load() &&
                  s.me().request_state() == core::RequestState::Done) {
                s.me().request_cs();
                requested.store(true);
                return false;
              }
              return requested.load() && s.me().request_state() ==
                                             core::RequestState::Done &&
                     !s.me().state().externally_requested;
            });
      },
      30s);
  EXPECT_TRUE(ok);
}

TEST(ThreadRuntime, ResetServiceRunsOnThreads) {
  // The PIF-based services use the same Process interface, so they run on
  // the thread runtime unchanged.
  const int n = 3;
  ThreadRuntime rt(n, {.seed = 19});
  std::atomic<int> hooks{0};
  for (int i = 0; i < n; ++i)
    rt.add_process(std::make_unique<core::ResetProcess>(
        n - 1, 1, [&hooks](sim::Context&) { hooks.fetch_add(1); }));
  rt.with_process<core::ResetProcess>(0, [](core::ResetProcess& p) {
    p.reset().request();
    return 0;
  });
  const bool ok = rt.run(
      [&rt] {
        return rt.with_process<core::ResetProcess>(
            0, [](core::ResetProcess& p) { return p.reset().done(); });
      },
      10s);
  EXPECT_TRUE(ok);
  EXPECT_EQ(hooks.load(), n);  // initiator + every peer
}

TEST(ThreadRuntime, ElectionServiceRunsOnThreads) {
  const int n = 4;
  ThreadRuntime rt(n, {.seed = 23});
  for (int i = 0; i < n; ++i)
    rt.add_process(
        std::make_unique<core::ElectionProcess>(100 - i, n - 1, 1));
  for (int i = 0; i < n; ++i)
    rt.with_process<core::ElectionProcess>(i, [](core::ElectionProcess& p) {
      p.election().request();
      return 0;
    });
  const bool ok = rt.run(
      [&rt, n] {
        for (int i = 0; i < n; ++i) {
          const bool done = rt.with_process<core::ElectionProcess>(
              i, [](core::ElectionProcess& p) { return p.election().done(); });
          if (!done) return false;
        }
        return true;
      },
      20s);
  ASSERT_TRUE(ok);
  for (int i = 0; i < n; ++i) {
    const auto leader = rt.with_process<core::ElectionProcess>(
        i, [](core::ElectionProcess& p) { return p.election().leader(); });
    EXPECT_EQ(leader, 100 - (n - 1));  // the smallest id
  }
}

TEST(RuntimeInjector, StormCeasesAndFreshRequestCompletes) {
  // A bounded (sub-second) storm over the thread runtime: crash bursts plus
  // a flapping link, then — once every window has elapsed — the
  // snap-stabilization contract: a fresh request completes.
  const int n = 4;
  const sim::Topology topo = sim::Topology::complete(n);
  ThreadRuntime rt(topo, {.seed = 29});
  for (int i = 0; i < n; ++i)
    rt.add_process(std::make_unique<core::PifProcess>(n - 1, 1));

  fault::FaultPlanSpec fs;
  fs.seed = 29;
  fs.horizon = 400;
  fs.min_len = 20;
  fs.max_len = 60;
  fault::PatternSpec crash;
  crash.kind = fault::PatternKind::CrashStorm;
  crash.begin = 20;
  crash.span = 200;
  crash.count = 3;
  crash.len = 40;
  fault::PatternSpec flap;
  flap.kind = fault::PatternKind::FlappingLink;
  flap.begin = 50;
  flap.count = 3;
  flap.len = 30;
  flap.period = 90;
  fs.patterns = {crash, flap};
  const fault::FaultPlan plan = fault::FaultPlan::compile(fs, topo);
  ASSERT_FALSE(plan.empty());

  fault::RuntimeInjectorOptions io;
  io.step_duration = std::chrono::microseconds(200);
  io.poll_interval = std::chrono::milliseconds(1);
  fault::RuntimeInjector inj(plan, rt, io);
  inj.start();

  std::atomic<bool> requested{false};
  const bool ok = rt.run(
      [&rt, &inj, &requested] {
        if (!inj.done()) return false;  // the fault still rages
        return rt.with_process<core::PifProcess>(
            0, [&requested](core::PifProcess& p) {
              if (!requested.load()) {
                if (!p.pif().done()) return false;
                p.pif().request(Value::text("post-storm"));
                requested.store(true);
                return false;
              }
              return p.pif().done();
            });
      },
      30s);
  inj.stop();
  EXPECT_TRUE(ok) << "post-storm request did not complete; "
                  << plan.repro_line();
  EXPECT_GT(inj.counters().crashes, 0u) << plan.repro_line();
}

TEST(ThreadRuntime, ObservationsAreMonotonic) {
  const int n = 2;
  ThreadRuntime rt(n, {.seed = 17});
  for (int i = 0; i < n; ++i)
    rt.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  rt.with_process<core::PifProcess>(0, [](core::PifProcess& p) {
    p.pif().request(Value::integer(1));
    return 0;
  });
  rt.run(
      [&rt] {
        return rt.with_process<core::PifProcess>(
            0, [](core::PifProcess& p) { return p.pif().done(); });
      },
      10s);
  const auto obs = rt.observations();
  ASSERT_FALSE(obs.empty());
  for (std::size_t i = 1; i < obs.size(); ++i)
    EXPECT_LT(obs[i - 1].step, obs[i].step);
}

}  // namespace
}  // namespace snapstab::runtime
