// test_scheduler.cpp — the three daemons: random (with fair loss),
// round-robin (synchronous rounds), scripted (adversarial replay).
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace snapstab::sim {
namespace {

std::unique_ptr<Simulator> probe_world(int n, std::uint64_t seed = 1) {
  auto sim = std::make_unique<Simulator>(n, 1, seed);
  for (int i = 0; i < n; ++i) sim->add_process(std::make_unique<ProbeProcess>());
  return sim;
}

TEST(RandomScheduler, DeterministicForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    auto sim = probe_world(3);
    // Processes ping their first channel on every tick so deliveries and
    // ticks interleave.
    for (int p = 0; p < 3; ++p)
      sim->process_as<ProbeProcess>(p).tick_fn = [](Context& ctx) {
        ctx.send(0, Message::naive_brd(Value::none()));
      };
    sim->set_scheduler(std::make_unique<RandomScheduler>(seed));
    sim->run(500);
    std::vector<int> counts;
    for (int p = 0; p < 3; ++p) {
      counts.push_back(sim->process_as<ProbeProcess>(p).ticks);
      counts.push_back(sim->process_as<ProbeProcess>(p).received);
    }
    return counts;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST(RandomScheduler, SkipsDisabledProcesses) {
  auto sim = probe_world(2);
  sim->process_as<ProbeProcess>(0).enabled = false;
  sim->set_scheduler(std::make_unique<RandomScheduler>(7));
  sim->run(200);
  EXPECT_EQ(sim->process_as<ProbeProcess>(0).ticks, 0);
  EXPECT_EQ(sim->process_as<ProbeProcess>(1).ticks, 200);
}

TEST(RandomScheduler, DoesNotDeliverToBusyProcess) {
  auto sim = probe_world(2);
  sim->process_as<ProbeProcess>(0).enabled = false;
  sim->process_as<ProbeProcess>(1).enabled = false;
  sim->process_as<ProbeProcess>(1).busy_flag = true;
  sim->network().channel(0, 1).push(Message::naive_brd(Value::none()));
  sim->set_scheduler(std::make_unique<RandomScheduler>(7));
  // The only pending work is a delivery to a busy process: quiescent.
  EXPECT_EQ(sim->run(100), Simulator::StopReason::Quiescent);
  EXPECT_EQ(sim->process_as<ProbeProcess>(1).received, 0);
}

TEST(RandomScheduler, LossAdversaryDropsRoughlyAtRate) {
  auto sim = probe_world(2);
  auto& p0 = sim->process_as<ProbeProcess>(0);
  p0.tick_fn = [](Context& ctx) {
    ctx.send(0, Message::naive_brd(Value::none()));
  };
  sim->process_as<ProbeProcess>(1).enabled = false;
  sim->set_scheduler(std::make_unique<RandomScheduler>(
      11, LossOptions{.rate = 0.5, .max_consecutive = 1000}));
  sim->run(40'000);
  const auto& m = sim->metrics();
  const double transmissions =
      static_cast<double>(m.deliveries + m.adversary_losses);
  ASSERT_GT(transmissions, 1000);
  EXPECT_NEAR(static_cast<double>(m.adversary_losses) / transmissions, 0.5,
              0.05);
}

TEST(RandomScheduler, FairLossCapForcesDelivery) {
  auto sim = probe_world(2);
  auto& p0 = sim->process_as<ProbeProcess>(0);
  p0.tick_fn = [](Context& ctx) {
    ctx.send(0, Message::naive_brd(Value::none()));
  };
  sim->process_as<ProbeProcess>(1).enabled = false;
  // Loss rate 1.0: without the cap nothing would ever be delivered.
  sim->set_scheduler(std::make_unique<RandomScheduler>(
      13, LossOptions{.rate = 1.0, .max_consecutive = 3}));
  sim->run(4000);
  EXPECT_GT(sim->process_as<ProbeProcess>(1).received, 0);
  // Exactly every fourth transmission attempt is a forced delivery.
  const auto& m = sim->metrics();
  EXPECT_NEAR(static_cast<double>(m.adversary_losses) /
                  static_cast<double>(m.deliveries),
              3.0, 0.5);
}

TEST(RoundRobinScheduler, RoundsTickEveryProcessOnce) {
  auto sim = probe_world(4);
  sim->set_scheduler(std::make_unique<RoundRobinScheduler>(1));
  // 4 processes, no messages: one round = 4 ticks.
  sim->run(8);
  for (int p = 0; p < 4; ++p)
    EXPECT_EQ(sim->process_as<ProbeProcess>(p).ticks, 2) << "p" << p;
  auto* rr = dynamic_cast<RoundRobinScheduler*>(sim->scheduler());
  ASSERT_NE(rr, nullptr);
  EXPECT_EQ(rr->rounds(), 2u);
}

TEST(RoundRobinScheduler, DeliversOncePerRound) {
  auto sim = probe_world(2);
  auto& p0 = sim->process_as<ProbeProcess>(0);
  p0.tick_fn = [](Context& ctx) {
    ctx.send(0, Message::naive_brd(Value::none()));
  };
  sim->set_scheduler(std::make_unique<RoundRobinScheduler>(1));
  // Capacity-1 dynamics: round 1 has no delivery (channel empty when the
  // round was formed). In even rounds the round-start send is lost on the
  // full channel and the pending message is delivered; in odd rounds the
  // send succeeds and nothing is pending at formation. So rounds cost
  // 2,3,2,3,... steps and deliveries land in rounds 2,4,6,8.
  sim->run(20);
  EXPECT_EQ(sim->process_as<ProbeProcess>(1).received, 4);
  EXPECT_GE(sim->metrics().sends_lost_full, 3u);
}

TEST(RoundRobinScheduler, SkipsStaleSteps) {
  auto sim = probe_world(2);
  // p1 consumes the message during its tick? No — instead: p0 sends, and
  // the message is consumed by delivery; a second Deliver scheduled for the
  // same (now empty) channel must be skipped, not executed as a no-op.
  auto& p0 = sim->process_as<ProbeProcess>(0);
  int sends = 0;
  p0.tick_fn = [&sends](Context& ctx) {
    if (sends++ == 0) ctx.send(0, Message::naive_brd(Value::none()));
  };
  sim->process_as<ProbeProcess>(1).enabled = true;
  sim->set_scheduler(std::make_unique<RoundRobinScheduler>(1));
  sim->run(50);
  EXPECT_EQ(sim->process_as<ProbeProcess>(1).received, 1);
  EXPECT_EQ(sim->metrics().deliveries, 1u);
}

TEST(ScriptedScheduler, ReplaysExactly) {
  auto sim = probe_world(2);
  auto& p0 = sim->process_as<ProbeProcess>(0);
  p0.tick_fn = [](Context& ctx) {
    ctx.send(0, Message::naive_brd(Value::none()));
  };
  std::vector<Step> script = {Step::tick(0), Step::deliver(0, 1),
                              Step::tick(1)};
  sim->set_scheduler(std::make_unique<ScriptedScheduler>(script));
  EXPECT_EQ(sim->run(100), Simulator::StopReason::Quiescent);
  EXPECT_EQ(sim->metrics().steps, 3u);
  EXPECT_EQ(sim->process_as<ProbeProcess>(0).ticks, 1);
  EXPECT_EQ(sim->process_as<ProbeProcess>(1).ticks, 1);
  EXPECT_EQ(sim->process_as<ProbeProcess>(1).received, 1);
}

}  // namespace
}  // namespace snapstab::sim
