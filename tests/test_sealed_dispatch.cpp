// test_sealed_dispatch.cpp — the sealed step loop is a cost change, not a
// behavior change.
//
// Simulator::run drives non-virtual next_step fast paths for the three
// built-in schedulers (SchedulerKind tags). A wrapper Scheduler subclass
// reports SchedulerKind::Generic and forces the virtual fallback; for the
// same (seed, topology, workload) both paths must produce bit-identical
// traces. Also covers the StopPolicy cadence knob and the RankSet
// order-statistics set backing the enabled-step index.
#include <gtest/gtest.h>

#include <memory>

#include "common/fenwick.hpp"
#include "common/rankset.hpp"
#include "golden_scenarios.hpp"

namespace snapstab {
namespace {

// Forces the generic (virtual next, optional<Step>) fallback around any
// scheduler: the default Scheduler constructor tags it Generic.
class VirtualWrapper final : public sim::Scheduler {
 public:
  explicit VirtualWrapper(std::unique_ptr<sim::Scheduler> inner)
      : inner_(std::move(inner)) {}
  std::optional<sim::Step> next(sim::Simulator& sim) override {
    return inner_->next(sim);
  }

 private:
  std::unique_ptr<sim::Scheduler> inner_;
};

TEST(SealedDispatch, KindTags) {
  EXPECT_EQ(sim::RandomScheduler(1).kind(), sim::SchedulerKind::Random);
  EXPECT_EQ(sim::RoundRobinScheduler(1).kind(),
            sim::SchedulerKind::RoundRobin);
  EXPECT_EQ(sim::ScriptedScheduler({}).kind(), sim::SchedulerKind::Scripted);
  VirtualWrapper wrapper(std::make_unique<sim::RandomScheduler>(1));
  EXPECT_EQ(wrapper.kind(), sim::SchedulerKind::Generic);
}

// Runs the golden PIF broadcast world under a scheduler built by `make`,
// sealed or wrapped, and renders the full trace.
template <typename MakeScheduler>
std::string pif_trace(MakeScheduler&& make, bool wrap) {
  auto sim = golden::pif_world(4, 1, /*seed=*/7);
  for (int p = 0; p < 4; ++p)
    sim->process_as<core::PifProcess>(p).pif().request(Value::integer(100 + p));
  std::unique_ptr<sim::Scheduler> sched = make();
  if (wrap) sched = std::make_unique<VirtualWrapper>(std::move(sched));
  sim->set_scheduler(std::move(sched));
  sim->run(200'000, golden::all_pif_done);
  return golden::render(*sim);
}

TEST(SealedDispatch, RandomSealedMatchesVirtualFallback) {
  const auto make = [] { return std::make_unique<sim::RandomScheduler>(7); };
  EXPECT_EQ(pif_trace(make, /*wrap=*/false), pif_trace(make, /*wrap=*/true));
}

TEST(SealedDispatch, RandomWithLossSealedMatchesVirtualFallback) {
  // Loss exercises the lose_on fast path and the fair-loss streaks.
  const auto make = [] {
    return std::make_unique<sim::RandomScheduler>(
        11, sim::LossOptions{.rate = 0.3, .max_consecutive = 5});
  };
  EXPECT_EQ(pif_trace(make, /*wrap=*/false), pif_trace(make, /*wrap=*/true));
}

TEST(SealedDispatch, RoundRobinSealedMatchesVirtualFallback) {
  const auto make = [] {
    return std::make_unique<sim::RoundRobinScheduler>(3);
  };
  EXPECT_EQ(pif_trace(make, /*wrap=*/false), pif_trace(make, /*wrap=*/true));
}

TEST(SealedDispatch, ScriptedSealedMatchesVirtualFallback) {
  const std::vector<sim::Step> script = {
      sim::Step::tick(0), sim::Step::tick(1), sim::Step::deliver(0, 1),
      sim::Step::deliver(1, 0), sim::Step::tick(0)};
  const auto make = [&script] {
    return std::make_unique<sim::ScriptedScheduler>(script);
  };
  EXPECT_EQ(pif_trace(make, /*wrap=*/false), pif_trace(make, /*wrap=*/true));
}

// Steps produced by user code carry no EdgeId (edge = -1, resolved via
// edge_between); scheduler-produced steps carry it. Both address the same
// channel, and equality ignores the cache.
TEST(SealedDispatch, StepEdgeIsACacheNotIdentity) {
  const sim::Topology topo = sim::Topology::complete(3);
  const sim::EdgeId e = topo.edge_between(1, 2);
  EXPECT_EQ(sim::Step::deliver(1, 2), sim::Step::deliver_on(e, 1, 2));
  EXPECT_EQ(sim::Step::lose(1, 2), sim::Step::lose_on(e, 1, 2));
  EXPECT_EQ(sim::Step::deliver(1, 2).edge, -1);
  EXPECT_EQ(sim::Step::deliver_on(e, 1, 2).edge, e);
}

// --- StopPolicy -------------------------------------------------------------

std::unique_ptr<sim::Simulator> requested_pif_world(std::uint64_t seed) {
  auto sim = golden::pif_world(4, 1, seed);
  sim->process_as<core::PifProcess>(0).pif().request(Value::integer(1));
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
  return sim;
}

TEST(StopPolicy, CheckEveryOneIsTheHistoricBehavior) {
  auto a = requested_pif_world(21);
  auto b = requested_pif_world(21);
  const auto ra = a->run(100'000, golden::all_pif_done);
  const auto rb = b->run(100'000, golden::all_pif_done,
                         sim::StopPolicy{.check_every = 1});
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(golden::render(*a), golden::render(*b));
}

TEST(StopPolicy, SparseChecksOvershootByLessThanTheCadence) {
  auto fine = requested_pif_world(21);
  ASSERT_EQ(fine->run(100'000, golden::all_pif_done),
            sim::Simulator::StopReason::Predicate);
  const std::uint64_t first_hold = fine->step_count();

  // all_pif_done is monotone in this workload (requests only move
  // Wait -> In -> Done and nothing re-requests), and the predicate does not
  // mutate state, so the sparse-check run executes the identical step
  // sequence and merely notices later.
  auto sparse = requested_pif_world(21);
  const auto reason = sparse->run(100'000, golden::all_pif_done,
                                  sim::StopPolicy{.check_every = 7});
  EXPECT_TRUE(golden::all_pif_done(*sparse));
  EXPECT_GE(sparse->step_count(), first_hold);
  EXPECT_LT(sparse->step_count(), first_hold + 7);
  // The run may also go quiescent between the predicate first holding and
  // the next scheduled check; either way it must not run past the cadence.
  EXPECT_TRUE(reason == sim::Simulator::StopReason::Predicate ||
              reason == sim::Simulator::StopReason::Quiescent);
}

TEST(StopPolicy, CheckEveryZeroIsTreatedAsOne) {
  auto a = requested_pif_world(5);
  auto b = requested_pif_world(5);
  a->run(100'000, golden::all_pif_done, sim::StopPolicy{.check_every = 0});
  b->run(100'000, golden::all_pif_done, sim::StopPolicy{.check_every = 1});
  EXPECT_EQ(a->step_count(), b->step_count());
  EXPECT_EQ(golden::render(*a), golden::render(*b));
}

// --- RankSet ----------------------------------------------------------------

TEST(RankSet, CountAndSelect) {
  RankSet set;
  set.reset(10);
  EXPECT_EQ(set.count(), 0);
  for (int i : {7, 2, 9, 0}) set.add(i, 1);
  EXPECT_EQ(set.count(), 4);
  EXPECT_EQ(set.kth(0), 0);
  EXPECT_EQ(set.kth(1), 2);
  EXPECT_EQ(set.kth(2), 7);
  EXPECT_EQ(set.kth(3), 9);
  set.add(2, -1);
  EXPECT_EQ(set.count(), 3);
  EXPECT_EQ(set.kth(1), 7);
}

// Differential check against FenwickSet across universe sizes that cross
// the word and group boundaries of the bitmap (1 word, several words,
// several groups), under random churn.
TEST(RankSet, AgreesWithFenwickSetUnderChurn) {
  for (const int universe : {1, 5, 64, 65, 240, 513, 4032}) {
    SCOPED_TRACE(universe);
    RankSet rank;
    FenwickSet fenwick;
    rank.reset(universe);
    fenwick.reset(universe);
    std::vector<char> member(static_cast<std::size_t>(universe), 0);
    Rng rng(static_cast<std::uint64_t>(universe) * 77 + 1);
    for (int round = 0; round < 2000; ++round) {
      const int i = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(universe)));
      const int delta = member[static_cast<std::size_t>(i)] ? -1 : 1;
      member[static_cast<std::size_t>(i)] ^= 1;
      rank.add(i, delta);
      fenwick.add(i, delta);
      ASSERT_EQ(rank.count(), fenwick.count());
      if (rank.count() == 0) continue;
      const int k = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(rank.count())));
      ASSERT_EQ(rank.kth(k), fenwick.kth(k));
      ASSERT_EQ(rank.kth(0), fenwick.kth(0));
      ASSERT_EQ(rank.kth(rank.count() - 1), fenwick.kth(fenwick.count() - 1));
    }
  }
}

}  // namespace
}  // namespace snapstab
