// test_services.cpp — the PIF-based services of §4.1's motivation list:
// global reset and leader election / consistent ranking.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab::core {
namespace {

using sim::Simulator;

TEST(Reset, RunsTheHookEverywhereExactlyOnce) {
  const int n = 4;
  Simulator sim(n, 1, 1);
  std::vector<int> hook_runs(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    auto* counter = &hook_runs[static_cast<std::size_t>(i)];
    sim.add_process(std::make_unique<ResetProcess>(
        n - 1, 1, [counter](sim::Context&) { ++*counter; }));
  }
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(2));
  request_reset(sim, 0);
  ASSERT_EQ(sim.run(400'000,
                    [](Simulator& s) {
                      return s.process_as<ResetProcess>(0).reset().done();
                    }),
            Simulator::StopReason::Predicate);
  for (int i = 0; i < n; ++i)
    EXPECT_EQ(hook_runs[static_cast<std::size_t>(i)], 1) << "p" << i;
}

TEST(Reset, FlushesInitiatorChannels) {
  // The reason a reset wants to ride on PIF: Property 1 guarantees the
  // initiator's channels hold no pre-reset message at the decision.
  Simulator sim(3, 1, 3);
  for (int i = 0; i < 3; ++i)
    sim.add_process(std::make_unique<ResetProcess>(2, 1));
  const Value marker = Value::text("pre-reset");
  sim.network().channel(1, 0).push(Message::pif(marker, marker, 1, 2));
  sim.network().channel(0, 2).push(Message::pif(marker, marker, 0, 3));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(4));
  request_reset(sim, 0);
  ASSERT_EQ(sim.run(400'000,
                    [](Simulator& s) {
                      return s.process_as<ResetProcess>(0).reset().done();
                    }),
            Simulator::StopReason::Predicate);
  for (int other : {1, 2}) {
    for (const auto& m : sim.network().channel(other, 0).contents())
      EXPECT_NE(m.b, marker);
    for (const auto& m : sim.network().channel(0, other).contents())
      EXPECT_NE(m.b, marker);
  }
}

TEST(Reset, WorksFromFuzzedConfigurations) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Simulator sim(3, 1, seed);
    std::vector<int> hook_runs(3, 0);
    for (int i = 0; i < 3; ++i) {
      auto* counter = &hook_runs[static_cast<std::size_t>(i)];
      sim.add_process(std::make_unique<ResetProcess>(
          2, 1, [counter](sim::Context&) { ++*counter; }));
    }
    Rng rng(seed * 99);
    sim::fuzz(sim, rng);
    sim.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
    request_reset(sim, 1);
    ASSERT_EQ(sim.run(400'000,
                      [](Simulator& s) {
                        return s.process_as<ResetProcess>(1).reset().done();
                      }),
              Simulator::StopReason::Predicate)
        << "seed=" << seed;
    for (int i = 0; i < 3; ++i)
      EXPECT_GE(hook_runs[static_cast<std::size_t>(i)], 1)
          << "seed=" << seed << " p" << i;
  }
}

TEST(Reset, GhostResetOrdersAreHarmlessButExecuted) {
  // A RESET broadcast sitting in a channel from the initial configuration
  // triggers the hook (the service cannot tell it from a genuine one — and
  // running a reset twice must be acceptable to the application anyway).
  Simulator sim(2, 1, 7);
  int hook_runs = 0;
  sim.add_process(std::make_unique<ResetProcess>(1, 1));
  sim.add_process(std::make_unique<ResetProcess>(
      1, 1, [&hook_runs](sim::Context&) { ++hook_runs; }));
  // Ghost broadcast with the brd-firing flag (3 = flag_bound - 1).
  sim.network().channel(0, 1).push(Message::pif(
      Value::token(Token::Reset), Value::none(), 3, 0));
  sim.execute(sim::Step::deliver(0, 1));
  EXPECT_EQ(hook_runs, 1);
}

TEST(Snapshot, CollectsEveryLocalState) {
  const int n = 4;
  Simulator sim(n, 1, 41);
  std::vector<std::int64_t> app_state = {100, 200, 300, 400};
  for (int i = 0; i < n; ++i) {
    auto* cell = &app_state[static_cast<std::size_t>(i)];
    sim.add_process(std::make_unique<SnapshotProcess>(
        n - 1, 1, [cell] { return Value::integer(*cell); }));
  }
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(42));
  request_snapshot(sim, 0);
  ASSERT_EQ(sim.run(400'000,
                    [](Simulator& s) {
                      return s.process_as<SnapshotProcess>(0).snapshot()
                          .done();
                    }),
            Simulator::StopReason::Predicate);
  const auto& snap = sim.process_as<SnapshotProcess>(0).snapshot();
  EXPECT_EQ(snap.own_state(), Value::integer(100));
  // Channel k of process 0 is process k+1.
  EXPECT_EQ(snap.collected()[0], Value::integer(200));
  EXPECT_EQ(snap.collected()[1], Value::integer(300));
  EXPECT_EQ(snap.collected()[2], Value::integer(400));
}

TEST(Snapshot, StateReadAfterQueryArrival) {
  // The collected value is the state at query-processing time, not the
  // initial state: bump the state when the query lands.
  Simulator sim(2, 1, 43);
  std::int64_t state = 7;
  sim.add_process(std::make_unique<SnapshotProcess>(
      1, 1, [] { return Value::integer(0); }));
  sim.add_process(std::make_unique<SnapshotProcess>(1, 1, [&state] {
    return Value::integer(state++);  // changes at every read
  }));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(44));
  request_snapshot(sim, 0);
  ASSERT_EQ(sim.run(200'000,
                    [](Simulator& s) {
                      return s.process_as<SnapshotProcess>(0).snapshot()
                          .done();
                    }),
            Simulator::StopReason::Predicate);
  // Exactly one genuine read happened at the peer for this computation.
  EXPECT_EQ(sim.process_as<SnapshotProcess>(0).snapshot().collected()[0],
            Value::integer(7));
}

TEST(Snapshot, WorksFromFuzzedConfigurations) {
  for (std::uint64_t seed = 61; seed <= 72; ++seed) {
    const int n = 3;
    Simulator sim(n, 1, seed);
    for (int i = 0; i < n; ++i)
      sim.add_process(std::make_unique<SnapshotProcess>(
          n - 1, 1, [i] { return Value::integer(1000 + i); }));
    Rng rng(seed * 101);
    sim::fuzz(sim, rng);
    sim.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
    request_snapshot(sim, 2);
    ASSERT_EQ(sim.run(400'000,
                      [](Simulator& s) {
                        return s.process_as<SnapshotProcess>(2).snapshot()
                            .done();
                      }),
              Simulator::StopReason::Predicate)
        << "seed=" << seed;
    const auto& snap = sim.process_as<SnapshotProcess>(2).snapshot();
    // peer_of(2, 0) = 0, peer_of(2, 1) = 1 for n = 3.
    EXPECT_EQ(snap.collected()[0], Value::integer(1000)) << "seed=" << seed;
    EXPECT_EQ(snap.collected()[1], Value::integer(1001)) << "seed=" << seed;
    EXPECT_EQ(snap.own_state(), Value::integer(1002)) << "seed=" << seed;
  }
}

std::unique_ptr<Simulator> election_world(
    const std::vector<std::int64_t>& ids, std::uint64_t seed) {
  const int n = static_cast<int>(ids.size());
  auto sim = std::make_unique<Simulator>(n, 1, seed);
  for (int i = 0; i < n; ++i)
    sim->add_process(std::make_unique<ElectionProcess>(
        ids[static_cast<std::size_t>(i)], n - 1, 1));
  return sim;
}

TEST(Election, AllAgreeOnLeaderAndRanking) {
  const std::vector<std::int64_t> ids = {40, 10, 30, 20};
  auto sim = election_world(ids, 1);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(2));
  for (int p = 0; p < 4; ++p) request_election(*sim, p);
  ASSERT_EQ(sim->run(800'000,
                     [](Simulator& s) {
                       for (int p = 0; p < 4; ++p)
                         if (!s.process_as<ElectionProcess>(p).election()
                                  .done())
                           return false;
                       return true;
                     }),
            Simulator::StopReason::Predicate);

  const std::vector<std::int64_t> sorted = {10, 20, 30, 40};
  std::set<int> ranks;
  int leaders = 0;
  for (int p = 0; p < 4; ++p) {
    auto& election = sim->process_as<ElectionProcess>(p).election();
    EXPECT_EQ(election.leader(), 10);
    EXPECT_EQ(election.members(), sorted);
    ranks.insert(election.rank());
    if (election.is_leader()) ++leaders;
  }
  EXPECT_EQ(ranks, (std::set<int>{0, 1, 2, 3}));  // a true permutation
  EXPECT_EQ(leaders, 1);
  // Rank 0 belongs to the leader.
  EXPECT_EQ(sim->process_as<ElectionProcess>(1).election().rank(), 0);
}

class ElectionProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(ElectionProperty, ConsistentFromArbitraryConfigurations) {
  const auto [n, seed] = GetParam();
  std::vector<std::int64_t> ids;
  Rng id_rng(seed * 31);
  for (int i = 0; i < n; ++i) ids.push_back(id_rng.range(0, 5000) * 50 + i);

  auto sim = election_world(ids, seed);
  Rng rng(seed ^ 0xE1EC);
  sim::fuzz(*sim, rng);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 1));
  for (int p = 0; p < n; ++p) request_election(*sim, p);
  ASSERT_EQ(sim->run(2'000'000,
                     [n](Simulator& s) {
                       for (int p = 0; p < n; ++p)
                         if (!s.process_as<ElectionProcess>(p).election()
                                  .done())
                           return false;
                       return true;
                     }),
            Simulator::StopReason::Predicate);

  std::int64_t expected_leader = ids[0];
  for (const auto id : ids) expected_leader = std::min(expected_leader, id);
  std::set<int> ranks;
  for (int p = 0; p < n; ++p) {
    auto& election = sim->process_as<ElectionProcess>(p).election();
    EXPECT_EQ(election.leader(), expected_leader);
    ranks.insert(election.rank());
  }
  EXPECT_EQ(static_cast<int>(ranks.size()), n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ElectionProperty,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8),
                                            ::testing::Values(5ull, 6ull)));

}  // namespace
}  // namespace snapstab::core
