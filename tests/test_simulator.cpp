// test_simulator.cpp — step execution, metrics, recording, stop conditions.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace snapstab::sim {
namespace {

std::unique_ptr<Simulator> probe_world(int n, std::size_t cap = 1,
                                       std::uint64_t seed = 1) {
  auto sim = std::make_unique<Simulator>(n, cap, seed);
  for (int i = 0; i < n; ++i) sim->add_process(std::make_unique<ProbeProcess>());
  return sim;
}

TEST(Simulator, TickActivatesTargetOnly) {
  auto sim = probe_world(3);
  sim->execute(Step::tick(1));
  EXPECT_EQ(sim->process_as<ProbeProcess>(0).ticks, 0);
  EXPECT_EQ(sim->process_as<ProbeProcess>(1).ticks, 1);
  EXPECT_EQ(sim->process_as<ProbeProcess>(2).ticks, 0);
  EXPECT_EQ(sim->metrics().steps, 1u);
  EXPECT_EQ(sim->metrics().ticks, 1u);
}

TEST(Simulator, SendAndDeliverRoundTrip) {
  auto sim = probe_world(2);
  auto& p0 = sim->process_as<ProbeProcess>(0);
  p0.tick_fn = [](Context& ctx) {
    ctx.send(0, Message::naive_brd(Value::integer(5)));
  };
  sim->execute(Step::tick(0));
  EXPECT_EQ(sim->metrics().sends, 1u);
  EXPECT_EQ(sim->network().channel(0, 1).size(), 1u);

  sim->execute(Step::deliver(0, 1));
  auto& p1 = sim->process_as<ProbeProcess>(1);
  ASSERT_EQ(p1.inbox.size(), 1u);
  EXPECT_EQ(p1.inbox[0].first, 0);  // n=2: the only local channel, index 0
  EXPECT_EQ(p1.inbox[0].second.b.as_int(), 5);
  EXPECT_EQ(sim->metrics().deliveries, 1u);
}

TEST(Simulator, SendIntoFullChannelCountsLoss) {
  auto sim = probe_world(2);
  auto& p0 = sim->process_as<ProbeProcess>(0);
  p0.tick_fn = [](Context& ctx) {
    ctx.send(0, Message::naive_brd(Value::integer(1)));
    ctx.send(0, Message::naive_brd(Value::integer(2)));  // channel full
  };
  sim->execute(Step::tick(0));
  EXPECT_EQ(sim->metrics().sends, 2u);
  EXPECT_EQ(sim->metrics().sends_lost_full, 1u);
  EXPECT_EQ(sim->network().channel(0, 1).size(), 1u);
}

TEST(Simulator, LoseDropsHeadMessage) {
  auto sim = probe_world(2);
  sim->network().channel(0, 1).push(Message::naive_brd(Value::none()));
  EXPECT_TRUE(sim->execute(Step::lose(0, 1)));
  EXPECT_TRUE(sim->network().channel(0, 1).empty());
  EXPECT_EQ(sim->metrics().adversary_losses, 1u);
  EXPECT_EQ(sim->process_as<ProbeProcess>(1).received, 0);
}

TEST(Simulator, DeliverFromEmptyChannelIsNoOp) {
  auto sim = probe_world(2);
  EXPECT_FALSE(sim->execute(Step::deliver(0, 1)));
  EXPECT_EQ(sim->metrics().deliveries, 0u);
}

TEST(Simulator, ObservationsCarryStepAndProcess) {
  auto sim = probe_world(2);
  auto& p0 = sim->process_as<ProbeProcess>(0);
  p0.tick_fn = [](Context& ctx) {
    ctx.observe(Layer::Pif, ObsKind::Start, -1, Value::integer(9));
  };
  sim->execute(Step::tick(1));  // unrelated step first
  sim->execute(Step::tick(0));
  const auto& events = sim->log().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].process, 0);
  EXPECT_EQ(events[0].step, 2u);
  EXPECT_EQ(events[0].kind, ObsKind::Start);
  EXPECT_EQ(events[0].value.as_int(), 9);
}

TEST(Simulator, RunStopsOnPredicate) {
  auto sim = probe_world(2);
  sim->set_scheduler(std::make_unique<RandomScheduler>(3));
  const auto reason = sim->run(10'000, [](Simulator& s) {
    return s.process_as<ProbeProcess>(0).ticks >= 5;
  });
  EXPECT_EQ(reason, Simulator::StopReason::Predicate);
  EXPECT_GE(sim->process_as<ProbeProcess>(0).ticks, 5);
}

TEST(Simulator, RunReportsQuiescence) {
  auto sim = probe_world(2);
  sim->process_as<ProbeProcess>(0).enabled = false;
  sim->process_as<ProbeProcess>(1).enabled = false;
  sim->set_scheduler(std::make_unique<RandomScheduler>(3));
  EXPECT_EQ(sim->run(1000), Simulator::StopReason::Quiescent);
  EXPECT_EQ(sim->metrics().steps, 0u);
}

TEST(Simulator, RunExhaustsBudget) {
  auto sim = probe_world(2);
  sim->set_scheduler(std::make_unique<RandomScheduler>(3));
  EXPECT_EQ(sim->run(100), Simulator::StopReason::BudgetExhausted);
  EXPECT_EQ(sim->metrics().steps, 100u);
}

TEST(Simulator, RecordingCapturesActivations) {
  auto sim = probe_world(2);
  sim->enable_recording();
  auto& p0 = sim->process_as<ProbeProcess>(0);
  p0.tick_fn = [](Context& ctx) {
    ctx.send(0, Message::naive_brd(Value::integer(7)));
  };
  sim->execute(Step::tick(0));
  sim->execute(Step::deliver(0, 1));
  sim->execute(Step::tick(1));

  const auto& acts0 = sim->activations(0);
  ASSERT_EQ(acts0.size(), 1u);
  EXPECT_EQ(acts0[0].kind, StepKind::Tick);

  const auto& acts1 = sim->activations(1);
  ASSERT_EQ(acts1.size(), 2u);
  EXPECT_EQ(acts1[0].kind, StepKind::Deliver);
  EXPECT_EQ(acts1[0].channel_index, 0);
  EXPECT_EQ(acts1[0].message.b.as_int(), 7);
  EXPECT_EQ(acts1[1].kind, StepKind::Tick);

  const auto& delivered = sim->delivered(0, 1);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].b.as_int(), 7);
}

TEST(Simulator, PerProcessRngIsStableAcrossRuns) {
  auto make = [] {
    auto sim = probe_world(2, 1, 99);
    std::vector<std::uint64_t> draws;
    auto& p0 = sim->process_as<ProbeProcess>(0);
    p0.tick_fn = [&draws](Context& ctx) { draws.push_back(ctx.rng().next()); };
    sim->execute(Step::tick(0));
    sim->execute(Step::tick(0));
    return draws;
  };
  EXPECT_EQ(make(), make());
}

}  // namespace
}  // namespace snapstab::sim
