// test_smoke.cpp — end-to-end smoke: every protocol completes one requested
// computation from a clean configuration and from a fuzzed one.
#include <gtest/gtest.h>

#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab {
namespace {

using core::MeStackProcess;
using core::PifProcess;
using sim::Simulator;

TEST(Smoke, PifCompletesFromCleanState) {
  Simulator sim(4, /*capacity=*/1, /*seed=*/7);
  for (int i = 0; i < 4; ++i)
    sim.add_process(std::make_unique<PifProcess>(3, 1));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(11));

  core::request_pif(sim, 0, Value::text("hello"));
  const auto reason = sim.run(200'000, [](Simulator& s) {
    return s.process_as<PifProcess>(0).pif().done();
  });
  EXPECT_EQ(reason, Simulator::StopReason::Predicate);

  const auto report = core::check_pif_spec(sim);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Smoke, PifCompletesFromFuzzedState) {
  Simulator sim(3, 1, 21);
  for (int i = 0; i < 3; ++i)
    sim.add_process(std::make_unique<PifProcess>(2, 1));
  Rng rng(99);
  sim::fuzz(sim, rng);
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(13));

  core::request_pif(sim, 1, Value::text("after-fault"));
  const auto reason = sim.run(200'000, [](Simulator& s) {
    return s.process_as<PifProcess>(1).pif().done();
  });
  EXPECT_EQ(reason, Simulator::StopReason::Predicate);
}

TEST(Smoke, MeServesARequest) {
  Simulator sim(3, 1, 5);
  for (int i = 0; i < 3; ++i)
    sim.add_process(std::make_unique<MeStackProcess>(100 + i, 2));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(17));

  ASSERT_TRUE(core::request_cs(sim, 2));
  const auto reason = sim.run(500'000, [](Simulator& s) {
    return s.process_as<MeStackProcess>(2).me().request_state() ==
           core::RequestState::Done;
  });
  EXPECT_EQ(reason, Simulator::StopReason::Predicate);

  const auto report = core::check_me_spec(sim);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace snapstab
