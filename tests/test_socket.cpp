// test_socket.cpp — the real-wire runtime: loopback integration tier.
//
// Everything here crosses the kernel as genuine UDP datagrams. The tiers:
//   * wire-frame unit tests (round trip, every rejection, name helper,
//     random + bit-flipped fuzz — decode_frame must be total);
//   * loopback sessions: every service completes over real sockets, with
//     SessionResults identical to the deterministic Simulator's;
//   * hostile traffic: injected garbage datagrams are counted and dropped
//     while live sessions keep completing;
//   * injected loss: the flag-counting handshake recovers from ≥15%
//     datagram loss (seeded — the failure message is the repro line);
//   * the fault engine: a compiled FaultPlan drives the socket-level
//     drop/duplicate/LinkDown filter and garbage datagrams, and after the
//     storm ceases fresh sessions complete (the snap-stabilization
//     contract);
//   * multi-process: a forked child hosts one node on a fixed port; a real
//     SIGKILL stalls the protocol, a respawned child lets it finish — and
//     the injector delivers the SIGKILL itself via set_node_pid.
//
// This file defines its own main: `test_socket --socket-child ...` re-runs
// the binary as a bare one-node SocketRuntime host (execv from a forked
// child — never gtest from a fork of a multithreaded parent).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/stack.hpp"
#include "fault/plan.hpp"
#include "fault/runtime_injector.hpp"
#include "net/socket_runtime.hpp"
#include "net/wire.hpp"
#include "svc/client.hpp"
#include "svc/host.hpp"

namespace snapstab {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Wire frame: unit tier.
// ---------------------------------------------------------------------------

TEST(WireFrame, RoundTripsEdgeAndMessage) {
  const Message m =
      Message::pif(Value::text("over the wire"), Value::integer(7), 2, 1);
  const auto frame = net::encode_frame(11, m);
  ASSERT_GE(frame.size(), net::kWireHeaderSize);
  const net::DecodedFrame d = net::decode_frame(frame);
  ASSERT_TRUE(d.ok()) << net::wire_frame_result_name(d.result);
  EXPECT_EQ(d.edge, 11);
  EXPECT_EQ(d.message, m);
}

TEST(WireFrame, EveryRejectionFires) {
  const auto good = net::encode_frame(3, Message::naive_brd(Value::none()));
  const auto result = [](std::vector<std::uint8_t> f) {
    return net::decode_frame(f).result;
  };

  auto f = good;
  f.resize(net::kWireHeaderSize - 1);
  EXPECT_EQ(result(f), net::WireFrameResult::TooShort);
  EXPECT_EQ(net::decode_frame(nullptr, 0).result,
            net::WireFrameResult::TooShort);

  f = good;
  f[2] ^= 0x40;
  EXPECT_EQ(result(f), net::WireFrameResult::BadMagic);

  f = good;
  f[4] = net::kWireVersion + 9;
  net::patch_checksum(f);
  EXPECT_EQ(result(f), net::WireFrameResult::BadVersion);

  f = good;
  f.push_back(0x00);  // payload_len no longer matches the datagram size
  EXPECT_EQ(result(f), net::WireFrameResult::BadLength);

  f = good;
  f.back() ^= 0x01;  // one payload bit corrupted in flight
  EXPECT_EQ(result(f), net::WireFrameResult::BadChecksum);

  // Frame-valid but payload-invalid: an unknown codec kind byte survives
  // the checksum (we re-patch) and must die in the codec underneath.
  f = good;
  f[net::kWireHeaderSize] = 0xFF;
  net::patch_checksum(f);
  EXPECT_EQ(result(f), net::WireFrameResult::BadMessage);

  EXPECT_EQ(result(good), net::WireFrameResult::Ok);
}

TEST(WireFrame, ResultNamesAreExhaustive) {
  std::set<std::string> names;
  for (int i = 0; i < net::kWireFrameResultCount; ++i) {
    const char* name =
        net::wire_frame_result_name(static_cast<net::WireFrameResult>(i));
    EXPECT_STRNE(name, "?") << i;
    names.insert(name);
  }
  EXPECT_EQ(static_cast<int>(names.size()), net::kWireFrameResultCount);
}

TEST(WireFrame, FuzzedDatagramsNeverCrash) {
  // decode_frame must be total: the network can hand the receiver
  // anything. Uniform noise probes the header checks; bit-flipped genuine
  // frames probe every validation layer with almost-valid input.
  Rng rng(20260808);
  int accepted = 0;
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::uint8_t> bytes(rng.below(80));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.below(256));
    if (net::decode_frame(bytes).ok()) ++accepted;
  }
  EXPECT_EQ(accepted, 0);  // 32-bit magic + 64-bit checksum: not by chance

  for (int i = 0; i < 5000; ++i) {
    const Message m = Message::random(rng, 10, /*wild=*/(i % 3) == 0);
    auto frame =
        net::encode_frame(static_cast<sim::EdgeId>(rng.below(100)), m);
    const int flips = 1 + static_cast<int>(rng.below(4));
    for (int k = 0; k < flips; ++k)
      frame[rng.below(frame.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    const net::DecodedFrame d = net::decode_frame(frame);
    if (d.ok()) {
      // Flips that cancel out (or hit only the edge field pre-checksum —
      // impossible, it is covered) must still round-trip as a message.
      EXPECT_TRUE(net::decode_frame(net::encode_frame(d.edge, d.message))
                      .ok());
    }
  }
}

// ---------------------------------------------------------------------------
// Loopback sessions: the full service stack over real sockets.
// ---------------------------------------------------------------------------

svc::HostConfig all_services_config(const sim::Topology& topo,
                                    sim::ProcessId p,
                                    std::shared_ptr<const sim::RoutingTable>
                                        routes) {
  svc::HostConfig cfg;
  cfg.id = 100 - p;  // the highest-numbered process holds the smallest id
  cfg.degree = topo.degree(p);
  cfg.channel_capacity = 1;
  cfg.with_reset = true;
  cfg.with_snapshot = true;
  cfg.with_termdetect = true;
  cfg.with_election = true;
  cfg.local_state = [p] { return Value::integer(1000 + p); };
  // An already-idle diffusing application: termination is claimable
  // immediately, the detection wave itself is what rides the wire.
  cfg.app = core::DiffusingApp{
      .on_message = [](sim::Context&, int, const Value&) {},
      .on_tick = [](sim::Context&) {},
      .has_work = [] { return false; },
      .counters = [] { return core::AppCounters{true, 0, 0}; },
  };
  cfg.routes = std::move(routes);
  cfg.self = p;
  return cfg;
}

struct SessionOutcomes {
  Value pif_value;
  std::vector<std::int64_t> min_ids;
  std::vector<int> ranks;
  bool reset_completed = false;
  Value snapshot_value;
  bool termination_claimed = false;
  bool forward_completed = false;
  Value forward_ack;
};

// The backend-neutral client program both backends run: one session per
// service, all awaited together.
template <typename Backend>
bool run_every_service(Backend& backend, const sim::Topology& topo,
                       SessionOutcomes* out, std::string* why) {
  svc::Client client(backend);
  const svc::Session pif =
      client.submit(0, svc::PifBroadcast{Value::text("real wires")});
  const svc::Session idl = client.submit(1, svc::Idl{});
  const svc::Session reset = client.submit(0, svc::Reset{});
  const svc::Session snap = client.submit(2, svc::Snapshot{});
  const svc::Session td = client.submit(1, svc::TermDetect{});
  const svc::Session fwd =
      client.submit(0, svc::ForwardMsg{topo.process_count() - 1,
                                       Value::integer(424242)});
  std::vector<svc::Session> sessions = {pif, idl, reset, snap, td, fwd};
  for (int p = 0; p < topo.process_count(); ++p)
    sessions.push_back(client.submit(p, svc::Election{}));
  if (!client.run_until(sessions, {.max_steps = 20'000'000,
                                   .timeout = 60'000ms})) {
    *why = "sessions did not complete";
    for (const auto& s : sessions)
      if (client.state(s) != svc::SessionState::Done)
        *why += std::string(" [") + svc::service_name(s.key.service) + "]";
    return false;
  }
  out->pif_value = client.result(pif).value;
  for (int p = 0; p < topo.process_count(); ++p) {
    const auto r =
        client.result(sessions[6 + static_cast<std::size_t>(p)]);
    out->min_ids.push_back(r.min_id);
    out->ranks.push_back(r.rank);
  }
  out->reset_completed = client.result(reset).completed;
  out->snapshot_value = client.result(snap).value;
  out->termination_claimed = client.result(td).termination_claimed;
  out->forward_completed = client.result(fwd).completed;
  out->forward_ack = client.result(fwd).value;
  return true;
}

// The eighth service: an ME host's phase cycle owns its whole stack, so a
// CriticalSection grant runs in its own small world.
template <typename Backend>
bool run_cs_grant(Backend& backend, bool* granted) {
  svc::Client client(backend);
  const svc::Session cs = client.submit(1, svc::CriticalSection{});
  if (!client.run_until(cs, {.max_steps = 20'000'000, .timeout = 60'000ms}))
    return false;
  *granted = client.result(cs).cs_granted;
  return true;
}

svc::HostConfig me_config(int p, int n) {
  svc::HostConfig cfg;
  cfg.id = p + 1;
  cfg.degree = n - 1;
  cfg.channel_capacity = 1;
  cfg.with_me = true;
  return cfg;
}

TEST(SocketLoopback, EveryServiceCompletesOverRealSockets) {
  const sim::Topology topo = sim::Topology::complete(4);
  const auto routes = std::make_shared<const sim::RoutingTable>(topo);
  net::SocketRuntime srt(topo, {.seed = 808});
  for (int p = 0; p < topo.process_count(); ++p)
    srt.add_process(std::make_unique<svc::ServiceHost>(
        all_services_config(topo, p, routes)));

  SessionOutcomes got;
  std::string why;
  const bool ok = run_every_service(srt, topo, &got, &why);
  srt.shutdown();
  ASSERT_TRUE(ok) << why;

  EXPECT_EQ(got.pif_value, Value::text("real wires"));
  for (int p = 0; p < topo.process_count(); ++p) {
    EXPECT_EQ(got.min_ids[static_cast<std::size_t>(p)], 97) << "p" << p;
    EXPECT_EQ(got.ranks[static_cast<std::size_t>(p)],
              topo.process_count() - 1 - p)
        << "p" << p;
  }
  EXPECT_TRUE(got.reset_completed);
  EXPECT_TRUE(got.snapshot_value.is_int());
  EXPECT_TRUE(got.termination_claimed);
  EXPECT_TRUE(got.forward_completed);

  // The eighth service over real sockets: one CS grant on an ME world.
  const int kMe = 3;
  net::SocketRuntime me_rt(kMe, {.seed = 809});
  for (int p = 0; p < kMe; ++p)
    me_rt.add_process(
        std::make_unique<svc::ServiceHost>(me_config(p, kMe)));
  bool granted = false;
  const bool cs_ok = run_cs_grant(me_rt, &granted);
  me_rt.shutdown();
  EXPECT_TRUE(cs_ok);
  EXPECT_TRUE(granted);

  const auto stats = srt.wire_stats();
  EXPECT_GT(stats.datagrams_sent, 0u);
  EXPECT_GT(stats.delivered, 0u);
  EXPECT_EQ(stats.by_result[static_cast<int>(
                net::WireFrameResult::BadChecksum)],
            0u);  // loopback corrupts nothing
  EXPECT_EQ(stats.bad_edge, 0u);
}

TEST(SocketLoopback, SessionOutcomesMatchTheSimulator) {
  // The acceptance bar: the same client program, the same hosts, once on
  // the deterministic Simulator and once over real UDP — identical
  // SessionResults on a lossless loopback.
  const sim::Topology topo = sim::Topology::complete(4);
  const auto routes = std::make_shared<const sim::RoutingTable>(topo);

  sim::Simulator sim(topo, 1, 515);
  for (int p = 0; p < topo.process_count(); ++p)
    sim.add_process(std::make_unique<svc::ServiceHost>(
        all_services_config(topo, p, routes)));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(515));
  SessionOutcomes sim_out;
  std::string why;
  ASSERT_TRUE(run_every_service(sim, topo, &sim_out, &why)) << why;

  net::SocketRuntime srt(topo, {.seed = 515});
  for (int p = 0; p < topo.process_count(); ++p)
    srt.add_process(std::make_unique<svc::ServiceHost>(
        all_services_config(topo, p, routes)));
  SessionOutcomes net_out;
  const bool ok = run_every_service(srt, topo, &net_out, &why);
  srt.shutdown();
  ASSERT_TRUE(ok) << why;

  EXPECT_EQ(net_out.pif_value, sim_out.pif_value);
  EXPECT_EQ(net_out.min_ids, sim_out.min_ids);
  EXPECT_EQ(net_out.ranks, sim_out.ranks);
  EXPECT_EQ(net_out.reset_completed, sim_out.reset_completed);
  // The snapshot digest folds fixed local states by channel index — the
  // same reading regardless of which backend carried the wave.
  EXPECT_EQ(net_out.snapshot_value, sim_out.snapshot_value);
  EXPECT_EQ(net_out.termination_claimed, sim_out.termination_claimed);
  EXPECT_EQ(net_out.forward_completed, sim_out.forward_completed);
  EXPECT_EQ(net_out.forward_ack, sim_out.forward_ack);

  // And the ME/CriticalSection stack, in its own world on both backends.
  const int kMe = 3;
  sim::Simulator me_sim(kMe, 1, 516);
  for (int p = 0; p < kMe; ++p)
    me_sim.add_process(
        std::make_unique<svc::ServiceHost>(me_config(p, kMe)));
  me_sim.set_scheduler(std::make_unique<sim::RandomScheduler>(516));
  bool sim_granted = false;
  ASSERT_TRUE(run_cs_grant(me_sim, &sim_granted));

  net::SocketRuntime me_rt(kMe, {.seed = 516});
  for (int p = 0; p < kMe; ++p)
    me_rt.add_process(
        std::make_unique<svc::ServiceHost>(me_config(p, kMe)));
  bool net_granted = false;
  const bool cs_ok = run_cs_grant(me_rt, &net_granted);
  me_rt.shutdown();
  ASSERT_TRUE(cs_ok);
  EXPECT_EQ(net_granted, sim_granted);
  EXPECT_TRUE(net_granted);
}

TEST(SocketLoopback, CorruptDatagramsAreCountedAndDropped) {
  const int n = 3;
  net::SocketRuntime srt(n, {.seed = 77});
  for (int p = 0; p < n; ++p)
    srt.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  srt.start();

  // A storm of hostile datagrams: pure noise (dies at the magic), plus
  // genuine frames with one byte corrupted in flight (dies at the
  // checksum) — all while a live broadcast crosses the same sockets.
  Rng rng(77);
  const int kNoise = 100, kCorrupt = 100;
  for (int i = 0; i < kNoise; ++i) {
    std::array<std::uint8_t, 40> noise;
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.below(256));
    noise[0] = 0x00;  // never the magic
    ASSERT_TRUE(srt.inject_datagram(static_cast<int>(rng.below(n)),
                                    noise.data(), noise.size()));
  }
  {
    ScopedStringPool scope(srt.string_pool());
    for (int i = 0; i < kCorrupt; ++i) {
      auto frame = net::encode_frame(
          static_cast<sim::EdgeId>(rng.below(srt.topology().edge_count())),
          Message::random(rng, 6));
      frame.back() ^= 0x04;
      ASSERT_TRUE(srt.inject_datagram(static_cast<int>(rng.below(n)),
                                      frame.data(), frame.size()));
    }
  }

  srt.with_process<core::PifProcess>(0, [](core::PifProcess& p) {
    p.pif().request(Value::text("through the noise"));
    return 0;
  });
  const bool done = srt.run(
      [&srt] {
        return srt.with_process<core::PifProcess>(
            0, [](core::PifProcess& p) { return p.pif().done(); });
      },
      30'000ms);
  // Give the drain loops a moment to swallow any remaining hostile
  // backlog, then stop.
  std::this_thread::sleep_for(50ms);
  srt.shutdown();
  ASSERT_TRUE(done);

  const auto stats = srt.wire_stats();
  const auto bad_magic =
      stats.by_result[static_cast<int>(net::WireFrameResult::BadMagic)];
  const auto bad_sum =
      stats.by_result[static_cast<int>(net::WireFrameResult::BadChecksum)];
  EXPECT_GE(bad_magic, static_cast<std::uint64_t>(kNoise) / 2);
  EXPECT_GE(bad_sum, static_cast<std::uint64_t>(kCorrupt) / 2);
  EXPECT_EQ(stats.rejected_frames,
            stats.datagrams_received - stats.by_result[static_cast<int>(
                                          net::WireFrameResult::Ok)]);
}

TEST(SocketLoopback, RecoversFromInjectedDatagramLoss) {
  // ≥15% of accepted datagrams are discarded before dispatch; the
  // flag-counting handshake must still finish every session. The seed is
  // the repro line.
  const std::uint64_t kSeed = 31337;
  const int n = 3;
  const sim::Topology topo = sim::Topology::complete(n);
  net::SocketRuntime srt(topo, {.seed = kSeed, .loss_rate = 0.15});
  for (int p = 0; p < n; ++p) {
    svc::HostConfig cfg;
    cfg.id = 10 + p;
    cfg.degree = topo.degree(p);
    cfg.channel_capacity = 1;
    cfg.with_election = true;
    srt.add_process(std::make_unique<svc::ServiceHost>(cfg));
  }
  svc::Client client(srt);
  std::vector<svc::Session> sessions;
  for (int p = 0; p < n; ++p) {
    sessions.push_back(client.submit(
        p, svc::PifBroadcast{Value::integer(9000 + p)}));
    sessions.push_back(client.submit(p, svc::Election{}));
  }
  const bool done = client.run_until(sessions, {.timeout = 60'000ms});
  srt.shutdown();
  const auto stats = srt.wire_stats();
  ASSERT_TRUE(done) << "repro: socket loss run, seed=" << kSeed
                    << " loss_rate=0.15 n=" << n;
  EXPECT_GT(stats.loss_drops, 0u) << "the loss filter never fired";
  for (const auto& s : sessions)
    EXPECT_TRUE(client.result(s).completed)
        << svc::service_name(s.key.service) << " repro: seed=" << kSeed;
}

// ---------------------------------------------------------------------------
// The fault engine against real sockets.
// ---------------------------------------------------------------------------

TEST(SocketFault, InjectorStormCeasesAndFreshSessionsComplete) {
  const int n = 4;
  const sim::Topology topo = sim::Topology::complete(n);
  net::SocketRuntime srt(topo, {.seed = 47});
  for (int p = 0; p < n; ++p)
    srt.add_process(std::make_unique<core::PifProcess>(n - 1, 1));

  fault::FaultPlanSpec fs;
  fs.seed = 47;
  fs.horizon = 400;
  fs.min_len = 20;
  fs.max_len = 80;
  fs.crash_windows = 2;
  fs.garbage_windows = 3;
  fs.loss_windows = 3;
  fs.duplicate_windows = 2;
  fs.rate = 0.4;
  const fault::FaultPlan plan = fault::FaultPlan::compile(fs, topo);
  ASSERT_FALSE(plan.empty());

  fault::RuntimeInjectorOptions io;
  io.step_duration = std::chrono::microseconds(200);
  io.poll_interval = std::chrono::milliseconds(1);
  fault::RuntimeInjector inj(plan, srt, io);
  srt.start();
  inj.start();

  // Ride out the storm, then the snap-stabilization contract: a fresh
  // request completes once the fault has ceased.
  std::atomic<bool> requested{false};
  const bool ok = srt.run(
      [&srt, &inj, &requested] {
        if (!inj.done()) return false;  // the fault still rages
        return srt.with_process<core::PifProcess>(
            0, [&requested](core::PifProcess& p) {
              if (!requested.load()) {
                if (!p.pif().done()) return false;
                p.pif().request(Value::text("post-storm"));
                requested.store(true);
                return false;
              }
              return p.pif().done();
            });
      },
      30'000ms);
  inj.stop();
  srt.shutdown();
  EXPECT_TRUE(ok) << "post-storm request did not complete; "
                  << plan.repro_line();
  EXPECT_GT(inj.counters().crashes, 0u) << plan.repro_line();
  EXPECT_GT(inj.counters().garbage_bursts, 0u) << plan.repro_line();
  // Every garbage burst carries one raw-noise datagram that must die in
  // frame validation.
  EXPECT_GT(srt.wire_stats().rejected_frames, 0u) << plan.repro_line();
}

// ---------------------------------------------------------------------------
// Multi-process mode: fixed ports, forked child, real SIGKILL.
// ---------------------------------------------------------------------------

std::vector<std::uint16_t> pick_free_ports(std::size_t k) {
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < k; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0)
      ADD_FAILURE() << "bind failed picking a free port";
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);
  }
  for (const int fd : fds) ::close(fd);  // freed only once all are drawn
  return ports;
}

// fork + execv, never fork alone: the parent is multithreaded by the time
// these tests run, so the child re-executes this binary from scratch.
pid_t spawn_child_host(const std::vector<std::uint16_t>& ports, int self,
                       int seconds) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<std::string> args = {"test_socket", "--socket-child"};
  for (const std::uint16_t p : ports) args.push_back(std::to_string(p));
  args.push_back(std::to_string(self));
  args.push_back(std::to_string(seconds));
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv("/proc/self/exe", argv.data());
  ::_exit(127);  // exec failed
}

TEST(SocketMultiProcess, SigkillStallsAndRespawnRecovers) {
  const auto ports = pick_free_ports(2);
  net::SocketRuntimeOptions opt;
  opt.seed = 2026;
  opt.ports = ports;
  opt.local_nodes = {0};
  net::SocketRuntime srt(2, opt);
  srt.add_process(std::make_unique<core::PifProcess>(1, 1));
  srt.start();

  const auto broadcast_done = [&srt](const char* text, int timeout_ms) {
    srt.with_process<core::PifProcess>(0, [text](core::PifProcess& p) {
      p.pif().request(Value::text(text));
      return 0;
    });
    return srt.run(
        [&srt] {
          return srt.with_process<core::PifProcess>(
              0, [](core::PifProcess& p) { return p.pif().done(); });
        },
        std::chrono::milliseconds(timeout_ms));
  };

  // Alive peer: the handshake completes across the process boundary.
  pid_t child = spawn_child_host(ports, /*self=*/1, /*seconds=*/30);
  ASSERT_GT(child, 0);
  ASSERT_TRUE(broadcast_done("two processes", 20'000));

  // Dead peer: SIGKILL is the real thing — no destructors, no goodbye.
  // The socket dies with the process and the handshake must stall.
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  EXPECT_FALSE(broadcast_done("into the void", 1'500));

  // Respawned peer: a fresh process rebinds the same port and the stalled
  // protocol — still retransmitting, as the paper demands — finishes.
  child = spawn_child_host(ports, /*self=*/1, /*seconds=*/30);
  ASSERT_GT(child, 0);
  const bool recovered = srt.run(
      [&srt] {
        return srt.with_process<core::PifProcess>(
            0, [](core::PifProcess& p) { return p.pif().done(); });
      },
      20'000ms);
  EXPECT_TRUE(recovered);

  ::kill(child, SIGKILL);
  ::waitpid(child, &status, 0);
  srt.shutdown();
}

TEST(SocketMultiProcess, InjectorDeliversTheSigkill) {
  // The fault engine's process-crash path: a CrashRestart window naming a
  // remote node delivers a genuine SIGKILL to its registered pid.
  const sim::Topology topo = sim::Topology::complete(2);
  fault::FaultPlanSpec fs;
  fs.horizon = 100;
  fs.min_len = 20;
  fs.max_len = 40;
  fs.crash_windows = 1;
  fault::FaultPlan plan;
  for (std::uint64_t seed = 1; seed < 500; ++seed) {
    fs.seed = seed;
    plan = fault::FaultPlan::compile(fs, topo);
    if (!plan.empty() && plan.windows()[0].process == 1) break;
  }
  ASSERT_FALSE(plan.empty());
  ASSERT_EQ(plan.windows()[0].process, 1) << plan.repro_line();

  const auto ports = pick_free_ports(2);
  net::SocketRuntimeOptions opt;
  opt.seed = 7;
  opt.ports = ports;
  opt.local_nodes = {0};
  net::SocketRuntime srt(2, opt);
  srt.add_process(std::make_unique<core::PifProcess>(1, 1));
  srt.start();

  const pid_t child = spawn_child_host(ports, /*self=*/1, /*seconds=*/30);
  ASSERT_GT(child, 0);

  fault::RuntimeInjectorOptions io;
  io.step_duration = std::chrono::microseconds(500);
  io.poll_interval = std::chrono::milliseconds(1);
  fault::RuntimeInjector inj(plan, srt, io);
  inj.set_node_pid(1, child);
  inj.start();
  while (!inj.done()) std::this_thread::sleep_for(5ms);
  inj.stop();

  EXPECT_EQ(inj.counters().process_kills, 1u) << plan.repro_line();
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << plan.repro_line();
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  srt.shutdown();
}

}  // namespace

// The --socket-child runner: one bare SocketRuntime hosting one node of a
// two-node world on fixed ports, serving until its wall budget expires.
int run_socket_child(int argc, char** argv) {
  if (argc < 6) return 2;
  net::SocketRuntimeOptions opt;
  opt.seed = 9090;
  opt.ports = {static_cast<std::uint16_t>(std::atoi(argv[2])),
               static_cast<std::uint16_t>(std::atoi(argv[3]))};
  opt.local_nodes = {std::atoi(argv[4])};
  const int seconds = std::atoi(argv[5]);
  net::SocketRuntime rt(2, opt);
  rt.add_process(std::make_unique<core::PifProcess>(1, 1));
  rt.start();
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  rt.shutdown();
  return 0;
}

}  // namespace snapstab

int main(int argc, char** argv) {
  if (argc > 1 && std::string_view(argv[1]) == "--socket-child")
    return snapstab::run_socket_child(argc, argv);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
