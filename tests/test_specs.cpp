// test_specs.cpp — the checkers themselves are load-bearing test
// infrastructure; verify they detect every violation class on synthetic
// observation streams (a checker that never fires proves nothing).
#include <gtest/gtest.h>

#include <memory>

#include "core/specs.hpp"
#include "core/stack.hpp"
#include "test_util.hpp"

namespace snapstab::core {
namespace {

using sim::Layer;
using sim::Observation;
using sim::ObsKind;
using sim::Simulator;

// A 3-process world whose log the tests write by hand.
std::unique_ptr<Simulator> blank_world(int n = 3) {
  auto sim = std::make_unique<Simulator>(n, 1, 1);
  for (int i = 0; i < n; ++i)
    sim->add_process(std::make_unique<sim::ProbeProcess>());
  return sim;
}

void emit(Simulator& sim, std::uint64_t step, int p, Layer layer, ObsKind k,
          int peer = -1, Value v = Value::none()) {
  sim.log().emit(Observation{step, p, layer, k, peer, std::move(v)});
}

TEST(PifSpecChecker, AcceptsACompleteComputation) {
  auto sim = blank_world();
  const Value m = Value::text("m");
  emit(*sim, 1, 0, Layer::Pif, ObsKind::RequestWait);
  emit(*sim, 2, 0, Layer::Pif, ObsKind::Start, -1, m);
  // p1 and p2 receive the broadcast; p0 gets one feedback per channel.
  emit(*sim, 3, 1, Layer::Pif, ObsKind::RecvBrd, 1, m);  // p0 is ch 1 at p1
  emit(*sim, 4, 2, Layer::Pif, ObsKind::RecvBrd, 0, m);  // p0 is ch 0 at p2
  emit(*sim, 5, 0, Layer::Pif, ObsKind::RecvFck, 0);
  emit(*sim, 6, 0, Layer::Pif, ObsKind::RecvFck, 1);
  emit(*sim, 7, 0, Layer::Pif, ObsKind::Decide, -1, m);
  EXPECT_TRUE(check_pif_spec(*sim).ok());
}

TEST(PifSpecChecker, FlagsMissingStart) {
  auto sim = blank_world();
  emit(*sim, 1, 0, Layer::Pif, ObsKind::RequestWait);
  const auto report = check_pif_spec(*sim);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("never started"), std::string::npos);
}

TEST(PifSpecChecker, FlagsMissingTermination) {
  auto sim = blank_world();
  emit(*sim, 1, 0, Layer::Pif, ObsKind::Start, -1, Value::text("m"));
  const auto report = check_pif_spec(*sim);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].find("never decided"), std::string::npos);
  // …and the relaxed mode tolerates it (budget-bounded runs).
  EXPECT_TRUE(check_pif_spec(*sim, {.require_termination = false,
                                    .require_start = false})
                  .ok());
}

TEST(PifSpecChecker, FlagsMissingBroadcastReceipt) {
  auto sim = blank_world();
  const Value m = Value::text("m");
  emit(*sim, 1, 0, Layer::Pif, ObsKind::Start, -1, m);
  emit(*sim, 2, 1, Layer::Pif, ObsKind::RecvBrd, 1, m);
  // p2 never receives m.
  emit(*sim, 3, 0, Layer::Pif, ObsKind::RecvFck, 0);
  emit(*sim, 4, 0, Layer::Pif, ObsKind::RecvFck, 1);
  emit(*sim, 5, 0, Layer::Pif, ObsKind::Decide, -1, m);
  const auto report = check_pif_spec(*sim);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations)
    if (v.find("never received by p2") != std::string::npos) found = true;
  EXPECT_TRUE(found) << report.summary();
}

TEST(PifSpecChecker, FlagsWrongPayloadReceipt) {
  auto sim = blank_world(2);
  emit(*sim, 1, 0, Layer::Pif, ObsKind::Start, -1, Value::text("m"));
  emit(*sim, 2, 1, Layer::Pif, ObsKind::RecvBrd, 0, Value::text("other"));
  emit(*sim, 3, 0, Layer::Pif, ObsKind::RecvFck, 0);
  emit(*sim, 4, 0, Layer::Pif, ObsKind::Decide);
  EXPECT_FALSE(check_pif_spec(*sim).ok());
}

TEST(PifSpecChecker, FlagsDuplicateFeedback) {
  auto sim = blank_world(2);
  const Value m = Value::text("m");
  emit(*sim, 1, 0, Layer::Pif, ObsKind::Start, -1, m);
  emit(*sim, 2, 1, Layer::Pif, ObsKind::RecvBrd, 0, m);
  emit(*sim, 3, 0, Layer::Pif, ObsKind::RecvFck, 0);
  emit(*sim, 4, 0, Layer::Pif, ObsKind::RecvFck, 0);  // duplicate
  emit(*sim, 5, 0, Layer::Pif, ObsKind::Decide, -1, m);
  const auto report = check_pif_spec(*sim);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("expected exactly 1"), std::string::npos);
}

TEST(PifSpecChecker, IgnoresOtherLayers) {
  auto sim = blank_world(2);
  emit(*sim, 1, 0, Layer::Baseline, ObsKind::Start, -1, Value::text("m"));
  // No Pif-layer events at all: nothing to check.
  EXPECT_TRUE(check_pif_spec(*sim).ok());
  // But the Baseline checker sees the unterminated start.
  EXPECT_FALSE(check_pif_spec(*sim, {.layer = Layer::Baseline}).ok());
}

TEST(MeSpecChecker, AcceptsDisjointIntervals) {
  auto sim = blank_world(2);
  emit(*sim, 1, 0, Layer::Me, ObsKind::RequestWait);
  emit(*sim, 2, 0, Layer::Me, ObsKind::CsEnter, -1, Value::integer(1));
  emit(*sim, 5, 0, Layer::Me, ObsKind::CsExit, -1, Value::integer(1));
  emit(*sim, 7, 1, Layer::Me, ObsKind::CsEnter, -1, Value::integer(0));
  emit(*sim, 9, 1, Layer::Me, ObsKind::CsExit, -1, Value::integer(0));
  EXPECT_TRUE(check_me_spec(*sim).ok());
}

TEST(MeSpecChecker, FlagsOverlapWithRequestedInterval) {
  auto sim = blank_world(2);
  emit(*sim, 1, 0, Layer::Me, ObsKind::CsEnter, -1, Value::integer(1));
  emit(*sim, 3, 1, Layer::Me, ObsKind::CsEnter, -1, Value::integer(0));
  emit(*sim, 5, 0, Layer::Me, ObsKind::CsExit, -1, Value::integer(1));
  emit(*sim, 7, 1, Layer::Me, ObsKind::CsExit, -1, Value::integer(0));
  const auto report = check_me_spec(*sim, {.require_liveness = false});
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("mutual exclusion violated"),
            std::string::npos);
}

TEST(MeSpecChecker, AllowsGhostGhostOverlap) {
  // Footnote 1: non-requesting processes may be in the CS concurrently.
  auto sim = blank_world(2);
  emit(*sim, 1, 0, Layer::Me, ObsKind::CsEnter, -1, Value::integer(0));
  emit(*sim, 2, 1, Layer::Me, ObsKind::CsEnter, -1, Value::integer(0));
  emit(*sim, 5, 0, Layer::Me, ObsKind::CsExit, -1, Value::integer(0));
  emit(*sim, 6, 1, Layer::Me, ObsKind::CsExit, -1, Value::integer(0));
  EXPECT_TRUE(check_me_spec(*sim, {.require_liveness = false}).ok());
}

TEST(MeSpecChecker, GhostExitWithoutEnterIsAnInitialInterval) {
  // A CsExit with no CsEnter means the process started inside the CS: the
  // interval [0, exit] must still exclude requested intervals.
  auto sim = blank_world(2);
  emit(*sim, 4, 1, Layer::Me, ObsKind::CsExit, -1, Value::integer(0));
  emit(*sim, 2, 0, Layer::Me, ObsKind::CsEnter, -1, Value::integer(1));
  emit(*sim, 6, 0, Layer::Me, ObsKind::CsExit, -1, Value::integer(1));
  const auto report = check_me_spec(*sim, {.require_liveness = false});
  EXPECT_FALSE(report.ok()) << "requested interval overlapped [0,4] ghost";
}

TEST(MeSpecChecker, FlagsStarvedRequest) {
  auto sim = blank_world(2);
  emit(*sim, 1, 0, Layer::Me, ObsKind::RequestWait);
  const auto strict = check_me_spec(*sim);
  ASSERT_FALSE(strict.ok());
  EXPECT_NE(strict.summary().find("never served"), std::string::npos);
  EXPECT_TRUE(check_me_spec(*sim, {.require_liveness = false}).ok());
}

TEST(MeSpecChecker, UnclosedRequestedIntervalStillChecksOverlap) {
  auto sim = blank_world(2);
  emit(*sim, 1, 0, Layer::Me, ObsKind::CsEnter, -1, Value::integer(1));
  // never exits (run truncated); another process enters meanwhile
  emit(*sim, 3, 1, Layer::Me, ObsKind::CsEnter, -1, Value::integer(0));
  const auto report = check_me_spec(*sim, {.require_liveness = false});
  EXPECT_FALSE(report.ok());
}

TEST(IdlSpecChecker, DetectsWrongTable) {
  auto sim = blank_world(2);
  // Fabricate a started-and-decided IDL computation at p0.
  emit(*sim, 1, 0, Layer::Idl, ObsKind::Start, -1, Value::integer(5));
  emit(*sim, 2, 0, Layer::Idl, ObsKind::Decide, -1, Value::integer(5));
  Idl::State good{RequestState::Done, 5, {9}};
  Idl::State bad{RequestState::Done, 7, {9}};
  Pif pif(1, 1);
  Idl idl_good(5, 1, pif);
  idl_good.mutable_state() = good;
  Idl idl_bad(5, 1, pif);
  idl_bad.mutable_state() = bad;

  const std::vector<std::int64_t> ids = {5, 9};
  EXPECT_TRUE(check_idl_spec(
                  *sim, [&](sim::ProcessId) -> const Idl& { return idl_good; },
                  ids)
                  .ok());
  const auto report = check_idl_spec(
      *sim, [&](sim::ProcessId) -> const Idl& { return idl_bad; }, ids);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("minID"), std::string::npos);
}

TEST(SpecReport, SummaryFormats) {
  SpecReport report;
  EXPECT_EQ(report.summary(), "OK");
  report.add("first problem");
  report.add("second problem");
  const std::string s = report.summary();
  EXPECT_NE(s.find("2 violation(s)"), std::string::npos);
  EXPECT_NE(s.find("first problem"), std::string::npos);
}

}  // namespace
}  // namespace snapstab::core
