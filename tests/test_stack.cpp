// test_stack.cpp — the protocol-stack wiring: payload dispatch of
// receive-brd, B-Mes routing of receive-fck, atomic sub-protocol starts,
// and the busy discipline of the critical section.
#include <gtest/gtest.h>

#include <memory>

#include "core/stack.hpp"
#include "sim/simulator.hpp"

namespace snapstab::core {
namespace {

using sim::Simulator;
using sim::Step;

// Puts a brd-firing PIF message (flag 3 on fresh NeigState) carrying the
// given payload into the channel from `src` to `dst` and delivers it.
void deliver_brd(Simulator& sim, int src, int dst, const Value& payload) {
  sim.network().channel(src, dst).clear();
  sim.network().channel(src, dst).push(
      Message::pif(payload, Value::none(), 3, 0));
  // Fresh processes have NeigState = 4, so flag 3 triggers the brd event.
  sim.execute(Step::deliver(src, dst));
}

std::unique_ptr<Simulator> stack_world(int n, std::uint64_t seed = 1) {
  auto sim = std::make_unique<Simulator>(n, 1, seed);
  for (int i = 0; i < n; ++i)
    sim->add_process(std::make_unique<MeStackProcess>(10 * (i + 1), n - 1));
  return sim;
}

TEST(StackDispatch, AskBroadcastAnswersPerFavour) {
  auto sim = stack_world(3);
  auto& p1 = sim->process_as<MeStackProcess>(1);
  // p1's Value = 1 favours its local channel 1's paper-number 1 = index 0,
  // which is process 2 (peer_of(1, 0) = 2).
  p1.me().mutable_state().value = 1;
  deliver_brd(*sim, 2, 1, Value::token(Token::Ask));
  // p1 echoes back with its feedback = YES (favoured asker).
  const auto& echo = sim->network().channel(1, 2).peek();
  EXPECT_EQ(echo.f, Value::token(Token::Yes));

  // A non-favoured asker gets NO.
  deliver_brd(*sim, 0, 1, Value::token(Token::Ask));
  EXPECT_EQ(sim->network().channel(1, 0).peek().f, Value::token(Token::No));
}

TEST(StackDispatch, ExitBroadcastResetsPhase) {
  auto sim = stack_world(2);
  auto& p1 = sim->process_as<MeStackProcess>(1);
  p1.me().mutable_state().phase = 3;
  deliver_brd(*sim, 0, 1, Value::token(Token::Exit));
  EXPECT_EQ(p1.me().phase(), 0);
  EXPECT_EQ(sim->network().channel(1, 0).peek().f, Value::token(Token::Ok));
}

TEST(StackDispatch, ExitCsAdvancesFavourOnlyFromTheFavoured) {
  auto sim = stack_world(3);
  auto& p0 = sim->process_as<MeStackProcess>(0);
  // p0's Value = 2 favours its channel with paper number 2 = index 1 =
  // process 2.
  p0.me().mutable_state().value = 2;
  // EXITCS from the non-favoured process 1 (index 0 at p0): no advance.
  deliver_brd(*sim, 1, 0, Value::token(Token::ExitCs));
  EXPECT_EQ(p0.me().value(), 2);
  // EXITCS from the favoured process 2 (index 1 at p0): advance mod n.
  deliver_brd(*sim, 2, 0, Value::token(Token::ExitCs));
  EXPECT_EQ(p0.me().value(), 0);  // (2+1) mod 3
}

TEST(StackDispatch, IdlQueryBroadcastFeedsBackIdentity) {
  auto sim = stack_world(2);
  deliver_brd(*sim, 0, 1, Value::token(Token::IdlQuery));
  EXPECT_EQ(sim->network().channel(1, 0).peek().f, Value::integer(20));
}

TEST(StackDispatch, GhostBroadcastIsPolitelyAcknowledged) {
  auto sim = stack_world(2);
  const int phase_before = sim->process_as<MeStackProcess>(1).me().phase();
  deliver_brd(*sim, 0, 1, Value::text("who knows"));
  EXPECT_EQ(sim->network().channel(1, 0).peek().f, Value::token(Token::Ok));
  EXPECT_EQ(sim->process_as<MeStackProcess>(1).me().phase(), phase_before);
}

TEST(StackDispatch, FeedbackRoutesByOwnBroadcast) {
  auto sim = stack_world(2);
  auto& p0 = sim->process_as<MeStackProcess>(0);
  // Put p0 one step from completing an ASK computation on channel 0
  // (installed directly: a full-stack tick would run ME's cycle instead).
  p0.pif().request(Value::token(Token::Ask));  // sets B-Mes
  p0.pif().mutable_state().request = RequestState::In;
  p0.pif().mutable_state().state[0] = 3;
  p0.me().mutable_state().privileges[0] = false;
  // The matching echo carries YES: the fck must land in Privileges.
  sim->network().channel(1, 0).clear();
  sim->network().channel(1, 0).push(
      Message::pif(Value::none(), Value::token(Token::Yes), 4, 3));
  sim->execute(Step::deliver(1, 0));
  EXPECT_TRUE(p0.me().privilege(0));

  // Same echo while broadcasting EXIT: A10, nothing happens.
  p0.pif().request(Value::token(Token::Exit));
  p0.pif().mutable_state().request = RequestState::In;
  p0.pif().mutable_state().state[0] = 3;
  p0.me().mutable_state().privileges[0] = false;
  sim->network().channel(1, 0).clear();
  sim->network().channel(1, 0).push(
      Message::pif(Value::none(), Value::token(Token::Yes), 4, 3));
  sim->execute(Step::deliver(1, 0));
  EXPECT_FALSE(p0.me().privilege(0));
}

TEST(StackDispatch, ForeignMessageKindsIgnoredByStacks) {
  auto sim = stack_world(2);
  sim->network().channel(0, 1).push(Message::app(Value::integer(5)));
  sim->network().channel(0, 1).push(Message::naive_brd(Value::integer(5)));
  sim->execute(Step::deliver(0, 1));
  sim->execute(Step::deliver(0, 1));
  EXPECT_TRUE(sim->log().events().empty());
  EXPECT_TRUE(sim->network().channel(1, 0).empty());
}

TEST(StackTiming, SubProtocolStartsInTheSameActivation) {
  // ME A0 -> IDL A1 -> PIF A1 must cascade within one tick: after a single
  // activation of a phase-0 process, the PIF computation has started
  // (flags reset), leaving no window against corrupted flags.
  auto sim = stack_world(2);
  auto& p0 = sim->process_as<MeStackProcess>(0);
  p0.me().mutable_state().phase = 0;
  p0.pif().mutable_state().state[0] = 3;  // corrupted flag
  sim->execute(Step::tick(0));
  EXPECT_EQ(p0.me().phase(), 1);
  EXPECT_EQ(p0.idl().request_state(), RequestState::In);
  EXPECT_EQ(p0.pif().request_state(), RequestState::In);
  EXPECT_EQ(p0.pif().state().state[0], 0) << "flags not reset atomically";
}

TEST(StackTiming, BusyProcessOnlyCountsDownItsCs) {
  StackOptions opts;
  opts.me.cs_length = 3;
  Simulator sim(2, 1, 1);
  sim.add_process(std::make_unique<MeStackProcess>(10, 1, opts));
  sim.add_process(std::make_unique<MeStackProcess>(20, 1, opts));
  auto& p0 = sim.process_as<MeStackProcess>(0);
  p0.me().mutable_state().cs_remaining = 3;
  p0.idl().mutable_state().request = RequestState::Wait;  // would fire A1
  ASSERT_TRUE(p0.busy());

  sim.execute(Step::tick(0));
  // The CS countdown advanced; the pending IDL request did NOT start.
  EXPECT_EQ(p0.me().state().cs_remaining, 2);
  EXPECT_EQ(p0.idl().request_state(), RequestState::Wait);

  sim.execute(Step::tick(0));
  sim.execute(Step::tick(0));
  EXPECT_FALSE(p0.busy());  // CS over (the exit half of A3 ran)
}

TEST(StackTiming, CsExitRunsReleaseAndDecide) {
  StackOptions opts;
  opts.me.cs_length = 1;
  Simulator sim(2, 1, 1);
  sim.add_process(std::make_unique<MeStackProcess>(10, 1, opts));
  sim.add_process(std::make_unique<MeStackProcess>(20, 1, opts));
  auto& p0 = sim.process_as<MeStackProcess>(0);
  // p0 is the leader (id 10 < 20) mid-CS with a served request.
  p0.idl().mutable_state().min_id = 10;
  p0.me().mutable_state().value = 0;
  p0.me().mutable_state().request = RequestState::In;
  p0.me().mutable_state().cs_remaining = 1;
  sim.execute(Step::tick(0));
  EXPECT_EQ(p0.me().request_state(), RequestState::Done);
  EXPECT_EQ(p0.me().value(), 1);  // the leader released itself: 0 -> 1
  EXPECT_EQ(p0.me().phase(), 4);
}

}  // namespace
}  // namespace snapstab::core
