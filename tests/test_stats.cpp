// test_stats.cpp — Summary statistics and Histogram used by the benches.
#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace snapstab {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.total(), 15.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
}

TEST(Summary, PercentilesInterpolate) {
  Summary s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(95), 95.0, 1e-9);
}

TEST(Summary, PercentileUnsortedInput) {
  Summary s;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, MergeCombinesSamples) {
  Summary a;
  Summary b;
  a.add(1.0);
  a.add(2.0);
  b.add(3.0);
  b.add(4.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
}

TEST(Summary, AddAfterPercentileInvalidatesCache) {
  Summary s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
}

TEST(Summary, BriefMentionsMoments) {
  Summary s;
  EXPECT_EQ(s.brief(), "(no samples)");
  s.add(10.0);
  s.add(20.0);
  const std::string text = s.brief();
  EXPECT_NE(text.find("15.0"), std::string::npos) << text;
}

TEST(Histogram, CountsFallInBins) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_EQ(h.total(), 10u);
  const std::string rendered = h.render();
  // Every bin has exactly one sample: ten bars of equal length.
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 10);
}

TEST(Histogram, UnderAndOverflowTracked) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(0.25);
  h.add(2.0);
  EXPECT_EQ(h.total(), 3u);
  const std::string rendered = h.render();
  EXPECT_NE(rendered.find("<"), std::string::npos);
  EXPECT_NE(rendered.find(">="), std::string::npos);
}

}  // namespace
}  // namespace snapstab
