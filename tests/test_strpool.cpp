// test_strpool.cpp — interned text: id identity within a pool, scoped pool
// redirection, the codec as the StrId <-> bytes boundary, and thread-safe
// interning (the ThreadRuntime shares one pool across node threads).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "msg/codec.hpp"
#include "msg/strpool.hpp"
#include "msg/value.hpp"

namespace snapstab {
namespace {

TEST(StringPool, InterningIsInjectivePerPool) {
  StringPool pool;
  const StrId a1 = pool.intern("alpha");
  const StrId b = pool.intern("beta");
  const StrId a2 = pool.intern("alpha");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(pool.str(a1), "alpha");
  EXPECT_EQ(pool.str(b), "beta");
}

TEST(StringPool, IdZeroIsTheEmptyStringAndOutOfRangeResolvesEmpty) {
  StringPool pool;
  EXPECT_EQ(pool.intern(""), StrId{0});
  EXPECT_EQ(pool.str(0), "");
  EXPECT_EQ(pool.str(12345), "");  // defensive: forged ids resolve empty
}

TEST(StringPool, ScopedPoolRedirectsValueText) {
  const Value global_v = Value::text("scoped-probe");
  {
    StringPool local;
    ScopedStringPool scope(local);
    const Value local_v = Value::text("scoped-probe");
    // Resolves against the local pool while the scope is active.
    EXPECT_EQ(local_v.as_text(), "scoped-probe");
    EXPECT_EQ(local.size(), 2u);  // "" + "scoped-probe"
  }
  // Scope gone: the thread is back on the global pool.
  EXPECT_EQ(global_v.as_text(), "scoped-probe");
}

TEST(StringPool, CodecCarriesTextAcrossPools) {
  // Encode under pool A, decode into pool B: the bytes are the bridge; the
  // decoded value compares equal to a B-interned value of the same text.
  StringPool pool_a;
  StringPool pool_b;
  std::vector<std::uint8_t> bytes;
  {
    ScopedStringPool scope(pool_a);
    bytes = encode(Message::app(Value::text("How old are you?")));
  }
  {
    ScopedStringPool scope(pool_b);
    const auto decoded = decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->b, Value::text("How old are you?"));
    EXPECT_EQ(decoded->b.as_text(), "How old are you?");
  }
}

TEST(StringPool, PoolTagsAreUniqueAndRegistered) {
  StringPool a;
  StringPool b;
  EXPECT_NE(a.tag(), 0u);
  EXPECT_NE(a.tag(), b.tag());
  EXPECT_EQ(StringPool::find_by_tag(a.tag()), &a);
  EXPECT_EQ(StringPool::find_by_tag(b.tag()), &b);
  std::uint32_t dead_tag = 0;
  {
    StringPool ephemeral;
    dead_tag = ephemeral.tag();
    EXPECT_EQ(StringPool::find_by_tag(dead_tag), &ephemeral);
  }
  EXPECT_EQ(StringPool::find_by_tag(dead_tag), nullptr);
}

TEST(StringPool, ValuesFromDifferentPoolsNeverAlias) {
  // Same raw id, different pools, different strings: resolution and
  // equality must follow the minting pool, not the raw id.
  StringPool a;
  StringPool b;
  Value from_a;
  Value from_b;
  {
    ScopedStringPool scope(a);
    from_a = Value::text("alpha");
  }
  {
    ScopedStringPool scope(b);
    from_b = Value::text("impostor");
  }
  ASSERT_EQ(from_a.text_id(), from_b.text_id());  // both id 1 in their pools
  EXPECT_NE(from_a, from_b);                      // ...but not equal
  {
    // Whatever pool is current, each value resolves to its own text.
    ScopedStringPool scope(b);
    EXPECT_EQ(from_a.as_text(), "alpha");
    EXPECT_EQ(from_b.as_text(), "impostor");
  }
  // Equal text in different pools compares equal via the slow path.
  Value also_alpha;
  {
    ScopedStringPool scope(b);
    also_alpha = Value::text("alpha");
  }
  EXPECT_EQ(from_a, also_alpha);
  EXPECT_EQ(also_alpha, from_a);
}

TEST(StringPool, ConcurrentInterningYieldsOneIdPerString) {
  StringPool pool;
  constexpr int kThreads = 8;
  constexpr int kStrings = 64;
  std::vector<std::vector<StrId>> ids(kThreads,
                                      std::vector<StrId>(kStrings, 0));
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w)
    workers.emplace_back([&, w] {
      for (int i = 0; i < kStrings; ++i)
        ids[static_cast<std::size_t>(w)][static_cast<std::size_t>(i)] =
            pool.intern("s" + std::to_string(i));
    });
  for (auto& t : workers) t.join();
  for (int w = 1; w < kThreads; ++w)
    EXPECT_EQ(ids[static_cast<std::size_t>(w)], ids[0]);
  EXPECT_EQ(pool.size(), 1u + kStrings);  // "" plus the 64 distinct strings
}

TEST(StringPool, HotPathValueCopiesDoNotTouchThePool) {
  StringPool pool;
  ScopedStringPool scope(pool);
  const Value v = Value::text("payload");
  const std::size_t size_after_intern = pool.size();
  Value copies[64];
  for (auto& c : copies) c = v;  // flat copies
  Message m = Message::app(v);
  Message m2 = m;
  EXPECT_EQ(m2.b, v);
  EXPECT_EQ(copies[63], v);
  EXPECT_EQ(pool.size(), size_after_intern);
}

}  // namespace
}  // namespace snapstab
