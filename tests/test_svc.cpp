// test_svc.cpp — the unified service/session API (svc::ServiceHost +
// svc::Client): one submit/poll/complete surface over every protocol.
//
// Covers the session lifecycle edges: Wait/In/Done mirroring of the
// paper's Request variable, submit-while-In queuing order, duplicate
// submit coalescing, forwarding admission reasons and end-to-end delivery
// acks, completion across a mid-run corruption burst (ghost-budget
// assertion), and identical session transcripts Simulator vs
// ThreadRuntime.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "core/forward_world.hpp"
#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"
#include "svc/client.hpp"
#include "svc/supervisor.hpp"

namespace snapstab::svc {
namespace {

using core::ForwardSubmit;
using sim::Simulator;
using sim::Step;

std::unique_ptr<Simulator> pif_host_world(int n, std::uint64_t seed) {
  auto sim = std::make_unique<Simulator>(n, 1, seed);
  for (int i = 0; i < n; ++i)
    sim->add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
  return sim;
}

// ---------------------------------------------------------------------------
// Lifecycle basics: Wait -> In -> Done, uniform results.
// ---------------------------------------------------------------------------

TEST(SvcSession, MirrorsThePapersRequestVariable) {
  auto sim = pif_host_world(3, 1);
  Client client(*sim);
  const Value payload = Value::text("How old are you?");
  const Session s = client.submit(0, PifBroadcast{payload});
  EXPECT_EQ(s.key.origin, 0);
  EXPECT_EQ(s.key.service, ServiceId::PifBroadcast);
  // Submitted = the application set Request := Wait (A1 has not run).
  EXPECT_EQ(client.state(s), SessionState::Wait);
  // One activation of the host executes A1: the computation is In.
  sim->execute(Step::tick(0));
  EXPECT_EQ(client.state(s), SessionState::In);
  ASSERT_TRUE(client.run_until(s));
  EXPECT_EQ(client.state(s), SessionState::Done);
  const SessionResult r = client.result(s);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.value, payload);
}

TEST(SvcSession, CompletionCallbackFiresOnceWithKeyAndResult) {
  auto sim = pif_host_world(2, 2);
  Client client(*sim);
  int fired = 0;
  SessionKey seen_key;
  SessionResult seen_result;
  const Session s = client.submit(
      1, PifBroadcast{Value::integer(7)},
      [&](const SessionKey& k, const SessionResult& r) {
        ++fired;
        seen_key = k;
        seen_result = r;
      });
  ASSERT_TRUE(client.run_until(s));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(seen_key, s.key);
  EXPECT_TRUE(seen_result.completed);
  EXPECT_EQ(seen_result.value, Value::integer(7));
}

TEST(SvcSession, ReleaseRecyclesTheHostRecord) {
  auto sim = pif_host_world(2, 3);
  Client client(*sim);
  const Session s = client.submit(0, PifBroadcast{Value::integer(1)});
  ASSERT_TRUE(client.run_until(s));
  auto& host = sim->process_as<ServiceHost>(0);
  EXPECT_EQ(host.session_count(), 1);
  client.release(s);
  EXPECT_EQ(host.session_count(), 0);
  // A released session reads as Done-and-forgotten.
  EXPECT_EQ(client.state(s), SessionState::Done);
}

// ---------------------------------------------------------------------------
// Submit-while-In queuing.
// ---------------------------------------------------------------------------

TEST(SvcSession, SubmitWhileInQueuesInSubmissionOrder) {
  auto sim = pif_host_world(3, 5);
  Client client(*sim);
  const Value b1 = Value::integer(101);
  const Value b2 = Value::integer(102);
  const Value b3 = Value::integer(103);
  const Session s1 = client.submit(0, PifBroadcast{b1});
  const Session s2 = client.submit(0, PifBroadcast{b2});
  const Session s3 = client.submit(0, PifBroadcast{b3});
  EXPECT_EQ(client.state(s1), SessionState::Wait);
  EXPECT_EQ(client.state(s2), SessionState::Wait);  // queued behind s1
  sim->execute(Step::tick(0));
  EXPECT_EQ(client.state(s1), SessionState::In);
  EXPECT_EQ(client.state(s2), SessionState::Wait);  // still queued
  ASSERT_TRUE(client.run_until({s1, s2, s3}));
  // The host ran the three computations strictly in submission order:
  // request and decision events appear b1, b2, b3.
  std::vector<Value> requests;
  std::vector<Value> decisions;
  for (const auto& e : sim->log().events()) {
    if (e.process != 0 || e.layer != sim::Layer::Pif) continue;
    if (e.kind == sim::ObsKind::RequestWait) requests.push_back(e.value);
    if (e.kind == sim::ObsKind::Decide) decisions.push_back(e.value);
  }
  EXPECT_EQ(requests, (std::vector<Value>{b1, b2, b3}));
  EXPECT_EQ(decisions, (std::vector<Value>{b1, b2, b3}));
}

TEST(SvcSession, DuplicateSubmitCoalescesWithTheQueuedTwin) {
  auto sim = pif_host_world(3, 6);
  Client client(*sim);
  const Value dup = Value::integer(55);
  int cb2 = 0, cb3 = 0;
  const Session s1 = client.submit(0, PifBroadcast{Value::integer(11)});
  const Session s2 = client.submit(  // queued
      0, PifBroadcast{dup},
      [&cb2](const SessionKey&, const SessionResult&) { ++cb2; });
  const Session s3 = client.submit(  // coalesces
      0, PifBroadcast{dup},
      [&cb3](const SessionKey&, const SessionResult&) { ++cb3; });
  EXPECT_FALSE(s2.coalesced);
  EXPECT_TRUE(s3.coalesced);
  EXPECT_EQ(s3.key, s2.key);
  ASSERT_TRUE(client.run_until({s1, s2, s3}));
  // Both callers' completion callbacks fired, chained on the one session.
  EXPECT_EQ(cb2, 1);
  EXPECT_EQ(cb3, 1);
  // The coalesced pair ran as ONE computation: one request, one decision.
  int dup_requests = 0;
  for (const auto& e : sim->log().events())
    if (e.process == 0 && e.kind == sim::ObsKind::RequestWait &&
        e.value == dup)
      ++dup_requests;
  EXPECT_EQ(dup_requests, 1);
}

TEST(SvcSession, CriticalSectionSessionsQueueInsteadOfRefusing) {
  auto sim = std::make_unique<Simulator>(3, 1, 9);
  for (int i = 0; i < 3; ++i)
    sim->add_process(std::make_unique<core::MeStackProcess>(i + 1, 2));
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(9));
  Client client(*sim);
  const Session g1 = client.submit(1, CriticalSection{});
  const Session g2 = client.submit(1, CriticalSection{});  // queues (no false)
  EXPECT_FALSE(g2.coalesced);  // CS grants do not coalesce: two grants wanted
  ASSERT_TRUE(client.run_until({g1, g2}));
  EXPECT_TRUE(client.result(g1).cs_granted);
  EXPECT_TRUE(client.result(g2).cs_granted);
  // ...while the legacy shim still refuses a second request mid-service.
  const Session g3 = client.submit(1, CriticalSection{});
  EXPECT_FALSE(core::request_cs(*sim, 1));
  ASSERT_TRUE(client.run_until(g3));
}

// ---------------------------------------------------------------------------
// The PIF-based services through sessions.
// ---------------------------------------------------------------------------

TEST(SvcServices, ResetElectionSnapshotTermdetectUniformSurface) {
  const int n = 4;
  std::vector<int> hooks(static_cast<std::size_t>(n), 0);
  auto sim = service_world(
      sim::Topology::complete(n), 1, 21, [&](sim::ProcessId p) {
        HostConfig cfg;
        cfg.id = 100 - p;  // process n-1 holds the smallest id
        cfg.with_reset = true;
        cfg.with_election = true;
        cfg.with_snapshot = true;
        cfg.on_reset = [&hooks, p](sim::Context&) {
          ++hooks[static_cast<std::size_t>(p)];
        };
        cfg.local_state = [p] { return Value::integer(1000 + p); };
        return cfg;
      });
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(22));
  Client client(*sim);

  std::vector<Session> sessions;
  sessions.push_back(client.submit(0, Reset{}));
  for (int p = 0; p < n; ++p)
    sessions.push_back(client.submit(p, Election{}));
  sessions.push_back(client.submit(2, Snapshot{}));
  ASSERT_TRUE(client.run_until(sessions));

  for (int p = 0; p < n; ++p)
    EXPECT_GE(hooks[static_cast<std::size_t>(p)], 1) << "p" << p;
  std::set<int> ranks;
  for (int p = 0; p < n; ++p) {
    const SessionResult r = client.result(sessions[1 + static_cast<std::size_t>(p)]);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.min_id, 100 - (n - 1));
    ranks.insert(r.rank);
  }
  EXPECT_EQ(static_cast<int>(ranks.size()), n);
  const SessionResult snap = client.result(sessions.back());
  EXPECT_TRUE(snap.completed);
  EXPECT_TRUE(snap.value.is_int());  // the digest
  EXPECT_NE(snap.value, Value::none());
}

// ---------------------------------------------------------------------------
// Forwarding sessions: admission reasons, delivery acks.
// ---------------------------------------------------------------------------

TEST(SvcForward, AdmissionReasonsSurfaceThroughResult) {
  auto sim = core::forward_world(sim::Topology::line(3), 1, 31,
                                 core::Forward::Options{.hop_buffer = 1});
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(31));
  Client client(*sim);

  const Session ok = client.submit(0, ForwardMsg{2, Value::integer(2'000'000)});
  EXPECT_EQ(ok.admission, ForwardSubmit::Accepted);
  EXPECT_TRUE(ok.accepted());

  const Session full =
      client.submit(0, ForwardMsg{2, Value::integer(2'000'001)});
  EXPECT_EQ(full.admission, ForwardSubmit::BufferFull);
  EXPECT_EQ(client.state(full), SessionState::Done);  // born Done (refused)
  EXPECT_FALSE(client.result(full).completed);
  EXPECT_EQ(client.result(full).admission, ForwardSubmit::BufferFull);

  const Session no_route =
      client.submit(0, ForwardMsg{7, Value::integer(2'000'002)});
  EXPECT_EQ(no_route.admission, ForwardSubmit::NoRoute);

  const Session self_ok =
      client.submit(1, ForwardMsg{1, Value::integer(2'000'003)});
  EXPECT_EQ(self_ok.admission, ForwardSubmit::Accepted);
  const Session self_full =
      client.submit(1, ForwardMsg{1, Value::integer(2'000'004)});
  EXPECT_EQ(self_full.admission, ForwardSubmit::SelfDestination);

  ASSERT_TRUE(client.run_until({ok, self_ok}));
  EXPECT_EQ(client.result(ok).value, Value::integer(2'000'000));
  EXPECT_EQ(client.result(self_ok).value, Value::integer(2'000'003));
  EXPECT_TRUE(core::check_forward_spec(*sim).ok());
}

TEST(SvcForward, SessionCompletesAcrossAMidRunCorruptionBurst) {
  auto sim = core::forward_world(sim::Topology::ring(5), 1, 41);
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(
      41, sim::LossOptions{.rate = 0.1, .max_consecutive = 4}));
  Client client(*sim);

  // Phase 1: clean service.
  const Session a = client.submit(0, ForwardMsg{2, Value::integer(3'000'000)});
  const Session b = client.submit(3, ForwardMsg{1, Value::integer(3'000'001)});
  ASSERT_TRUE(client.run_until({a, b}));

  // Mid-run corruption burst: scramble every hop handshake and queue, stuff
  // forged forwarding traffic into the channels.
  Rng chaos(411);
  sim::FuzzOptions burst;
  burst.flag_limit = 4;
  burst.forward_header_n = 5;
  sim::fuzz(*sim, chaos, burst);
  const std::uint64_t ghost_budget = core::forward_ghost_budget(*sim);

  // Phase 2: sessions submitted after the burst still complete...
  const Session c = client.submit(1, ForwardMsg{4, Value::integer(3'000'002)});
  const Session d = client.submit(2, ForwardMsg{0, Value::integer(3'000'003)});
  ASSERT_TRUE(client.run_until({c, d}));
  EXPECT_EQ(client.result(c).value, Value::integer(3'000'002));
  EXPECT_EQ(client.result(d).value, Value::integer(3'000'003));

  // ...and the burst's garbage surfaces as at most ghost_budget deliveries
  // (each corrupted entry at most once — the snap-stabilization bound).
  const auto report = core::check_forward_spec(
      *sim, {.require_all_delivered = true,
             .max_ghost_deliveries = ghost_budget});
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------------
// Backend equivalence: the same client program on Simulator and
// ThreadRuntime yields the same session transcript.
// ---------------------------------------------------------------------------

struct Transcript {
  std::vector<SessionKey> keys;
  std::vector<bool> done;
  std::vector<Value> values;

  bool operator==(const Transcript&) const = default;
};

// The one client program, written once against Client's backend-neutral
// surface (the acceptance shape of the svc API).
template <typename Backend>
Transcript run_program(Backend& backend) {
  Client client(backend);
  std::vector<Session> sessions;
  sessions.push_back(client.submit(0, PifBroadcast{Value::text("alpha")}));
  sessions.push_back(client.submit(1, PifBroadcast{Value::text("beta")}));
  sessions.push_back(client.submit(0, PifBroadcast{Value::text("gamma")}));
  EXPECT_TRUE(client.run_until(sessions));
  Transcript t;
  for (const Session& s : sessions) {
    t.keys.push_back(s.key);
    t.done.push_back(client.done(s));
    t.values.push_back(client.result(s).value);
  }
  return t;
}

TEST(SvcBackends, IdenticalSessionTranscriptSimulatorVsThreadRuntime) {
  const int n = 3;
  auto sim = pif_host_world(n, 51);
  const Transcript sim_transcript = run_program(*sim);

  runtime::ThreadRuntime rt(n, {.seed = 51});
  for (int i = 0; i < n; ++i)
    rt.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  const Transcript rt_transcript = run_program(rt);

  EXPECT_EQ(sim_transcript, rt_transcript);
  // Both backends recorded the submissions in their observation streams.
  int rt_requests = 0;
  for (const auto& e : rt.observations())
    if (e.kind == sim::ObsKind::RequestWait) ++rt_requests;
  EXPECT_EQ(rt_requests, 3);
}

// ---------------------------------------------------------------------------
// Sessions add no RNG draws: a session-driven world replays the exact
// engine step sequence of a shim-driven one.
// ---------------------------------------------------------------------------

TEST(SvcDeterminism, SessionDriveMatchesShimDriveBitIdentically) {
  const auto run_shim = [] {
    auto sim = pif_host_world(4, 77);
    core::request_pif(*sim, 0, Value::integer(7));
    sim->run(100'000, [](Simulator& s) {
      return s.process_as<core::PifProcess>(0).pif().done();
    });
    return sim;
  };
  const auto run_session = [] {
    auto sim = pif_host_world(4, 77);
    Client client(*sim);
    const Session s = client.submit(0, PifBroadcast{Value::integer(7)});
    EXPECT_TRUE(client.run_until(s));
    return sim;
  };
  auto a = run_shim();
  auto b = run_session();
  EXPECT_EQ(a->metrics().steps, b->metrics().steps);
  EXPECT_EQ(a->metrics().sends, b->metrics().sends);
  EXPECT_EQ(a->metrics().deliveries, b->metrics().deliveries);
  ASSERT_EQ(a->log().size(), b->log().size());
  for (std::size_t i = 0; i < a->log().size(); ++i)
    EXPECT_EQ(a->log().events()[i].to_string(), b->log().events()[i].to_string())
        << "event " << i;
}

// ---------------------------------------------------------------------------
// AwaitOptions hardening: a bounded run_until returns false instead of
// spinning when sessions cannot complete, on both backends.
// ---------------------------------------------------------------------------

TEST(SvcAwait, SimulatorBudgetExhaustionReturnsFalseAndIsRetryable) {
  auto sim = pif_host_world(3, 91);
  Client client(*sim);
  const Session s = client.submit(0, PifBroadcast{Value::integer(5)});
  // Far too few steps for a PIF cycle on n=3: the await must give up at the
  // budget, not spin, and leave the session In.
  AwaitOptions tight;
  tight.max_steps = 3;
  EXPECT_FALSE(client.run_until(s, tight));
  EXPECT_EQ(sim->step_count(), 3u);
  EXPECT_FALSE(client.done(s));
  // A follow-up await with a real budget finishes the same session.
  EXPECT_TRUE(client.run_until(s));
  EXPECT_TRUE(client.result(s).completed);
}

TEST(SvcAwait, RefusedForwardSessionIsDoneNotAwaitedForever) {
  auto sim = core::forward_world(sim::Topology::line(3), 1, 92,
                                 core::Forward::Options{.hop_buffer = 1});
  sim->set_scheduler(std::make_unique<sim::RandomScheduler>(92));
  Client client(*sim);
  // dst 99 is not a process of this topology: refused at admission, born
  // Done. run_until must see Done immediately (zero steps), with the
  // refusal surfaced through the result, not loop on an unreachable goal.
  const Session s = client.submit(0, ForwardMsg{99, Value::integer(1)});
  EXPECT_EQ(s.admission, ForwardSubmit::NoRoute);
  EXPECT_TRUE(client.run_until(s));
  EXPECT_EQ(sim->step_count(), 0u);
  const SessionResult r = client.result(s);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.admission, ForwardSubmit::NoRoute);
}

TEST(SvcAwait, ThreadRuntimeTimeoutReturnsFalseAndSecondAwaitDoesNotCrash) {
  const int n = 3;
  // Total message loss: the PIF wave can never complete, so the await can
  // only end at the wall-clock budget.
  runtime::ThreadRuntime rt(n, {.loss_rate = 1.0, .seed = 93});
  for (int i = 0; i < n; ++i)
    rt.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  Client client(rt);
  const Session s = client.submit(0, PifBroadcast{Value::integer(9)});
  AwaitOptions opts;
  opts.timeout = std::chrono::milliseconds(50);
  EXPECT_FALSE(client.run_until(s, opts));
  // The runtime is one-shot; a retry after the timeout must poll and
  // report false, not trip the one-shot assertion.
  EXPECT_FALSE(client.run_until(s, opts));
  EXPECT_FALSE(client.done(s));
}

// ---------------------------------------------------------------------------
// Supervisor resilience stack: the per-service circuit breaker
// (Closed -> Open -> HalfOpen) and hedged resubmits, all deterministic on
// the engine step clock.
// ---------------------------------------------------------------------------

TEST(SvcBreaker, TripsOpensProbesAndCloses) {
  auto sim = pif_host_world(3, 61);
  Client client(*sim);
  SuperviseOptions so;
  so.attempt_deadline = 2'000;
  so.retry_budget = 6;
  so.backoff_base = 4;
  so.backoff_max = 8;
  so.breaker.enabled = true;
  so.breaker.failure_threshold = 2;
  so.breaker.open_cooldown = 50'000;  // never elapses inside this run
  Supervisor sup(client, so);
  EXPECT_EQ(sup.breaker_state(ServiceId::PifBroadcast), BreakerState::Closed);
  const auto t = sup.supervise(0, PifBroadcast{Value::integer(41)});
  // Kill exactly the first two attempts: crash the origin host once per
  // attempt number, the first pump after each launch.
  Rng rng(7);
  int last_killed = 0;
  sup.set_on_pump([&] {
    if (sup.terminal(t)) return;
    const int a = sup.attempts(t);
    if (a >= 1 && a <= 2 && a != last_killed) {
      sim->process_as<ServiceHost>(0).crash_restart(rng);
      last_killed = a;
    }
  });
  AwaitOptions aw;
  aw.policy.check_every = 1;
  ASSERT_TRUE(sup.run_all(aw));
  EXPECT_EQ(sup.outcome(t), SessionOutcome::Ok);
  // Two kills reach the threshold and trip the breaker; the resubmission
  // lands on it Open (held, no attempt burned), the quiescent cooldown
  // fast-forward half-opens it, and the probe succeeds and closes it.
  EXPECT_EQ(sup.attempts(t), 3);
  EXPECT_EQ(sup.stats().breaker_trips, 1u);
  EXPECT_EQ(sup.stats().breaker_short_circuits, 1u);
  EXPECT_EQ(sup.stats().probes, 1u);
  EXPECT_EQ(sup.breaker_state(ServiceId::PifBroadcast), BreakerState::Closed);
}

TEST(SvcBreaker, ProbeQuotaAdmitsExactlyOneWhileHalfOpen) {
  auto sim = pif_host_world(3, 63);
  Client client(*sim);
  SuperviseOptions so;
  so.attempt_deadline = 2'000;
  so.retry_budget = 6;
  so.backoff_base = 4;
  so.backoff_max = 8;
  so.breaker.enabled = true;
  so.breaker.failure_threshold = 1;
  so.breaker.open_cooldown = 50'000;
  so.breaker.probe_quota = 1;
  Supervisor sup(client, so);
  const auto t1 = sup.supervise(0, PifBroadcast{Value::integer(7)});
  const auto t2 = sup.supervise(1, PifBroadcast{Value::integer(8)});
  // Kill both first attempts before any pump: the first failure trips the
  // breaker, the second lands on it already Open.
  Rng rng(9);
  sim->process_as<ServiceHost>(0).crash_restart(rng);
  sim->process_as<ServiceHost>(1).crash_restart(rng);
  AwaitOptions aw;
  aw.policy.check_every = 1;
  ASSERT_TRUE(sup.run_all(aw));
  EXPECT_EQ(sup.outcome(t1), SessionOutcome::Ok);
  EXPECT_EQ(sup.outcome(t2), SessionOutcome::Ok);
  EXPECT_EQ(sup.stats().breaker_trips, 1u);
  EXPECT_EQ(sup.stats().probes, 1u);  // the quota admitted exactly one
  EXPECT_EQ(sup.breaker_state(ServiceId::PifBroadcast), BreakerState::Closed);
}

TEST(SvcBreaker, FailedProbeReopensTheBreaker) {
  auto sim = pif_host_world(3, 65);
  Client client(*sim);
  SuperviseOptions so;
  so.attempt_deadline = 2'000;
  so.retry_budget = 6;
  so.backoff_base = 4;
  so.backoff_max = 8;
  so.breaker.enabled = true;
  so.breaker.failure_threshold = 1;
  so.breaker.open_cooldown = 50'000;
  Supervisor sup(client, so);
  const auto t = sup.supervise(0, PifBroadcast{Value::integer(9)});
  Rng rng(11);
  int last_killed = 0;
  sup.set_on_pump([&] {
    if (sup.terminal(t)) return;
    const int a = sup.attempts(t);
    if (a >= 1 && a <= 2 && a != last_killed) {
      sim->process_as<ServiceHost>(0).crash_restart(rng);
      last_killed = a;
    }
  });
  AwaitOptions aw;
  aw.policy.check_every = 1;
  ASSERT_TRUE(sup.run_all(aw));
  // Attempt 1 trips the breaker; attempt 2 IS the HalfOpen probe and dies,
  // reopening it (the second trip); attempt 3 is the second probe and
  // closes it.
  EXPECT_EQ(sup.outcome(t), SessionOutcome::Ok);
  EXPECT_EQ(sup.attempts(t), 3);
  EXPECT_EQ(sup.stats().breaker_trips, 2u);
  EXPECT_EQ(sup.stats().probes, 2u);
  EXPECT_EQ(sup.breaker_state(ServiceId::PifBroadcast), BreakerState::Closed);
}

TEST(SvcBreaker, DisabledBreakerNeverTripsOrHolds) {
  auto sim = pif_host_world(3, 67);
  Client client(*sim);
  SuperviseOptions so;
  so.attempt_deadline = 2'000;
  so.retry_budget = 6;
  so.backoff_base = 4;
  Supervisor sup(client, so);  // breaker disabled by default
  const auto t = sup.supervise(0, PifBroadcast{Value::integer(3)});
  Rng rng(13);
  int last_killed = 0;
  sup.set_on_pump([&] {
    if (sup.terminal(t)) return;
    const int a = sup.attempts(t);
    if (a >= 1 && a <= 2 && a != last_killed) {
      sim->process_as<ServiceHost>(0).crash_restart(rng);
      last_killed = a;
    }
  });
  AwaitOptions aw;
  aw.policy.check_every = 1;
  ASSERT_TRUE(sup.run_all(aw));
  EXPECT_EQ(sup.outcome(t), SessionOutcome::Ok);
  EXPECT_EQ(sup.stats().breaker_trips, 0u);
  EXPECT_EQ(sup.stats().breaker_short_circuits, 0u);
  EXPECT_EQ(sup.stats().probes, 0u);
  EXPECT_EQ(sup.breaker_state(ServiceId::PifBroadcast), BreakerState::Closed);
}

TEST(SvcHedge, HealthyRequestLaunchesNoBackup) {
  auto sim = pif_host_world(3, 69);
  Client client(*sim);
  SuperviseOptions so;
  so.hedge.enabled = true;
  so.hedge.hedge_after = 100'000;  // far beyond the healthy completion
  Supervisor sup(client, so);
  const auto t = sup.supervise(0, PifBroadcast{Value::integer(5)});
  AwaitOptions aw;
  aw.policy.check_every = 1;
  ASSERT_TRUE(sup.run_all(aw));
  EXPECT_EQ(sup.outcome(t), SessionOutcome::Ok);
  EXPECT_EQ(sup.stats().hedges_launched, 0u);
  EXPECT_EQ(sup.stats().hedge_wins, 0u);
}

TEST(SvcHedge, BackupLaunchesAfterTheLatencyBudgetAndFirstTerminalWins) {
  auto sim = pif_host_world(3, 71);
  Client client(*sim);
  SuperviseOptions so;
  so.hedge.enabled = true;
  so.hedge.hedge_after = 1;  // fires on the first pump past launch
  so.hedge.max_hedges = 1;
  Supervisor sup(client, so);
  const auto t = sup.supervise(0, PifBroadcast{Value::integer(6)});
  AwaitOptions aw;
  aw.policy.check_every = 1;
  ASSERT_TRUE(sup.run_all(aw));
  // Exactly one backup launched (max_hedges caps it even though the budget
  // keeps elapsing), the first terminal result won, and the ticket settled
  // once — no double completion.
  EXPECT_EQ(sup.outcome(t), SessionOutcome::Ok);
  EXPECT_EQ(sup.result(t).value, Value::integer(6));
  EXPECT_EQ(sup.stats().hedges_launched, 1u);
  EXPECT_EQ(sup.stats().ok, 1u);
  EXPECT_EQ(sup.live(), 0);
}

TEST(SvcResilience, BreakerPlusHedgeRunsAreDeterministic) {
  const auto run_once = [] {
    auto sim = pif_host_world(4, 73);
    Client client(*sim);
    SuperviseOptions so;
    so.attempt_deadline = 1'200;
    so.retry_budget = 4;
    so.backoff_base = 8;
    so.seed = 73;
    so.breaker.enabled = true;
    so.breaker.failure_threshold = 2;
    so.breaker.open_cooldown = 256;
    so.hedge.enabled = true;
    so.hedge.hedge_after = 600;
    Supervisor sup(client, so);
    Rng rng(17);
    int pumps = 0;
    sup.set_on_pump([&] {
      // A deterministic burst of kills early in the run.
      if (++pumps <= 3)
        sim->process_as<ServiceHost>(pumps % 4).crash_restart(rng);
    });
    std::vector<Supervisor::Ticket> ts;
    for (int i = 0; i < 4; ++i)
      ts.push_back(sup.supervise(i, PifBroadcast{Value::integer(500 + i)}));
    AwaitOptions aw;
    aw.policy.check_every = 4;
    sup.run_all(aw);
    std::vector<int> outcomes;
    for (const auto t : ts)
      outcomes.push_back(static_cast<int>(sup.outcome(t)));
    return std::tuple(sim->step_count(), outcomes, sup.stats().resubmits,
                      sup.stats().breaker_trips, sup.stats().probes,
                      sup.stats().hedges_launched, sup.stats().hedge_wins);
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// AwaitResult: the typed verdict behind the bool shim — "more budget might
// finish this" (BudgetExhausted) vs "no budget ever will" (RuntimeDown).
// ---------------------------------------------------------------------------

TEST(SvcAwait, AwaitResultNamesAreExhaustive) {
  EXPECT_STREQ(await_result_name(AwaitResult::Done), "done");
  EXPECT_STREQ(await_result_name(AwaitResult::BudgetExhausted),
               "budget-exhausted");
  EXPECT_STREQ(await_result_name(AwaitResult::RuntimeDown), "runtime-down");
}

TEST(SvcAwait, SimulatorBudgetVerdictIsTypedAndRetryable) {
  auto sim = pif_host_world(3, 94);
  Client client(*sim);
  const Session s = client.submit(0, PifBroadcast{Value::integer(4)});
  // Steps remain enabled at the budget: BudgetExhausted, not RuntimeDown —
  // a bigger budget finishes the same session. (A quiescent Simulator with
  // incomplete sessions would read RuntimeDown, but the snap-stabilizing
  // protocols retransmit: even a fully wiped channel set re-enables, which
  // is exactly why the typed verdict matters on the ThreadRuntime, where
  // the one-shot run really can die under the await.)
  AwaitOptions tight;
  tight.max_steps = 2;
  EXPECT_EQ(client.await_all({s}, tight), AwaitResult::BudgetExhausted);
  EXPECT_FALSE(client.done(s));
  AwaitOptions roomy;
  roomy.max_steps = 1'000'000;
  EXPECT_EQ(client.await_all({s}, roomy), AwaitResult::Done);
  EXPECT_TRUE(client.result(s).completed);
}

TEST(SvcAwait, ThreadRuntimeDistinguishesTimeoutFromDeadRuntime) {
  const int n = 3;
  // Total loss: the wave cannot complete, so the first await ends at the
  // wall budget while the runtime is still live — BudgetExhausted. The
  // runtime is one-shot, so after that run the threads have joined and a
  // second await can only report RuntimeDown.
  runtime::ThreadRuntime rt(n, {.loss_rate = 1.0, .seed = 95});
  for (int i = 0; i < n; ++i)
    rt.add_process(std::make_unique<core::PifProcess>(n - 1, 1));
  Client client(rt);
  const Session s = client.submit(0, PifBroadcast{Value::integer(6)});
  AwaitOptions opts;
  opts.timeout = std::chrono::milliseconds(50);
  EXPECT_EQ(client.await_all({s}, opts), AwaitResult::BudgetExhausted);
  EXPECT_EQ(client.await_all({s}, opts), AwaitResult::RuntimeDown);
  EXPECT_FALSE(client.done(s));
}

}  // namespace
}  // namespace snapstab::svc
