// test_termdetect.cpp — termination detection over snap-stabilizing probes.
//
// The observed application is a token game: tokens carry a TTL, hop to
// random neighbors via App messages (with channel backpressure), and are
// absorbed at TTL 0 — a genuinely diffusing computation that terminates.
// Safety: the detector never claims while a token exists anywhere (held or
// in flight). Liveness: once the game dies out, the detector claims.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab::core {
namespace {

using sim::Simulator;

// One process's side of the token game.
struct TokenApp {
  std::deque<int> held;  // TTLs of the tokens currently held
  std::uint32_t sent = 0;
  std::uint32_t received = 0;
  std::uint32_t absorbed = 0;

  DiffusingApp hooks() {
    DiffusingApp app;
    app.counters = [this] {
      return AppCounters{held.empty(), sent, received};
    };
    app.has_work = [this] { return !held.empty(); };
    app.on_tick = [this](sim::Context& ctx) {
      if (held.empty()) return;
      const int ttl = held.front();
      if (ttl <= 0) {
        held.pop_front();
        ++absorbed;
        return;
      }
      const int ch = static_cast<int>(ctx.rng().below(
          static_cast<std::uint64_t>(ctx.degree())));
      // Backpressure: a refused send keeps the token for a later retry, so
      // `sent` counts exactly the messages that actually entered a channel.
      if (ctx.send(ch, Message::app(Value::integer(ttl - 1)))) {
        held.pop_front();
        ++sent;
      }
    };
    app.on_message = [this](sim::Context&, int, const Value& v) {
      ++received;
      held.push_back(static_cast<int>(v.as_int(0)));
    };
    return app;
  }
};

struct World {
  std::unique_ptr<Simulator> sim;
  std::vector<std::unique_ptr<TokenApp>> apps;
};

World token_world(int n, std::uint64_t seed) {
  World w;
  w.sim = std::make_unique<Simulator>(n, 1, seed);
  for (int i = 0; i < n; ++i) {
    w.apps.push_back(std::make_unique<TokenApp>());
    w.sim->add_process(std::make_unique<TermDetectProcess>(
        n - 1, 1, w.apps.back()->hooks()));
  }
  return w;
}

bool tokens_anywhere(const World& w) {
  for (const auto& app : w.apps)
    if (!app->held.empty()) return true;
  const auto& net = w.sim->network();
  for (int s = 0; s < w.sim->process_count(); ++s)
    for (int d = 0; d < w.sim->process_count(); ++d) {
      if (s == d) continue;
      for (const auto& m : net.channel(s, d).contents())
        if (m.kind == MsgKind::App) return true;
    }
  return false;
}

TEST(TermDetect, PackUnpackRoundTrip) {
  const AppCounters cases[] = {
      {true, 0, 0},
      {false, 0, 0},
      {true, 1, 2},
      {false, 0x7FFFFFFFu, 0x7FFFFFFFu},
      {true, 123456, 654321},
  };
  for (const auto& c : cases) {
    const AppCounters back = TermDetect::unpack(TermDetect::pack(c));
    EXPECT_EQ(back, c);
  }
}

TEST(TermDetect, UnpackIsTotalOnGarbage) {
  (void)TermDetect::unpack(Value::none());
  (void)TermDetect::unpack(Value::text("junk"));
  (void)TermDetect::unpack(Value::token(Token::Exit));
  const AppCounters c = TermDetect::unpack(Value::integer(-1));
  EXPECT_TRUE(c.passive || !c.passive);  // merely: no crash, some value
}

TEST(TermDetect, IdleSystemClaimsInTwoWaves) {
  auto w = token_world(3, 1);
  w.sim->set_scheduler(std::make_unique<sim::RandomScheduler>(2));
  request_termdetect(*w.sim, 0);
  ASSERT_EQ(
      w.sim->run(400'000,
                 [](Simulator& s) {
                   return s.process_as<TermDetectProcess>(0).detector().done();
                 }),
      Simulator::StopReason::Predicate);
  const auto& detector = w.sim->process_as<TermDetectProcess>(0).detector();
  EXPECT_TRUE(detector.termination_claimed());
  EXPECT_EQ(detector.waves_used(), 2);
}

class TermDetectGame
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(TermDetectGame, NeverClaimsWhileTokensLiveAndClaimsAfter) {
  const auto [n, seed] = GetParam();
  auto w = token_world(n, seed);
  // Seed the game: a few tokens with assorted TTLs at assorted processes.
  Rng rng(seed * 17);
  for (int t = 0; t < 2 * n; ++t)
    w.apps[rng.below(static_cast<std::uint64_t>(n))]->held.push_back(
        static_cast<int>(rng.below(12)));

  w.sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed + 1));
  request_termdetect(*w.sim, 0);
  const auto reason = w.sim->run(4'000'000, [](Simulator& s) {
    return s.process_as<TermDetectProcess>(0).detector().done();
  });
  ASSERT_EQ(reason, Simulator::StopReason::Predicate);

  const auto& detector = w.sim->process_as<TermDetectProcess>(0).detector();
  EXPECT_TRUE(detector.termination_claimed());
  // Safety, checked at the moment of the claim: no token held, none in
  // flight (the run stopped right at the decision step).
  EXPECT_FALSE(tokens_anywhere(w)) << "claimed termination with live tokens";
  // Conservation: every counted send was received (reliable App layer).
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  for (const auto& app : w.apps) {
    sent += app->sent;
    received += app->received;
  }
  EXPECT_EQ(sent, received);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TermDetectGame,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(11ull, 12ull,
                                                              13ull)));

TEST(TermDetect, NonTerminatingApplicationNeverClaims) {
  // An application that is always active: the detector must keep probing
  // and never claim.
  const int n = 2;
  Simulator sim(n, 1, 21);
  std::uint32_t work = 0;
  DiffusingApp busy;
  busy.counters = [&work] {
    ++work;  // every probe sees fresh activity
    return AppCounters{false, work, work};
  };
  sim.add_process(std::make_unique<TermDetectProcess>(n - 1, 1, busy));
  DiffusingApp idle;
  idle.counters = [] { return AppCounters{true, 0, 0}; };
  sim.add_process(std::make_unique<TermDetectProcess>(n - 1, 1, idle));
  sim.set_scheduler(std::make_unique<sim::RandomScheduler>(22));
  request_termdetect(sim, 0);
  EXPECT_EQ(sim.run(200'000,
                    [](Simulator& s) {
                      return s.process_as<TermDetectProcess>(0).detector()
                          .done();
                    }),
            Simulator::StopReason::BudgetExhausted);
  EXPECT_FALSE(
      sim.process_as<TermDetectProcess>(0).detector().termination_claimed());
  EXPECT_GT(sim.process_as<TermDetectProcess>(0).detector().waves_used(), 2);
}

TEST(TermDetect, SurvivesFuzzedProtocolState) {
  // The probes ride on snap-stabilizing PIF: corrupted protocol state
  // (flags, request variables, channel garbage) cannot produce a false
  // claim for a *started* detection, and the detection still completes.
  for (std::uint64_t seed = 31; seed <= 40; ++seed) {
    auto w = token_world(3, seed);
    Rng rng(seed * 7);
    sim::fuzz(*w.sim, rng);  // protocol state + channels (apps untouched)
    // The corruption model covers the *protocol*; the application layer is
    // assumed authentic (DESIGN.md / termdetect.hpp). Strip the ghost App
    // messages the fuzzer injected, keep every protocol-level corruption.
    for (int s = 0; s < 3; ++s)
      for (int d = 0; d < 3; ++d) {
        if (s == d) continue;
        auto& ch = w.sim->network().channel(s, d);
        std::vector<Message> keep;
        while (!ch.empty()) {
          const Message m = ch.pop();
          if (m.kind != MsgKind::App) keep.push_back(m);
        }
        for (const auto& m : keep) ch.push(m);
      }
    w.apps[0]->held.push_back(4);  // one live token at the start
    w.sim->set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
    request_termdetect(*w.sim, 1);
    const auto reason = w.sim->run(2'000'000, [](Simulator& s) {
      return s.process_as<TermDetectProcess>(1).detector().done();
    });
    ASSERT_EQ(reason, Simulator::StopReason::Predicate) << "seed=" << seed;
    EXPECT_TRUE(w.sim->process_as<TermDetectProcess>(1)
                    .detector()
                    .termination_claimed());
    EXPECT_FALSE(tokens_anywhere(w)) << "seed=" << seed;
  }
}

TEST(TermDetect, LoadedSystemUsesMoreWaves) {
  auto idle = token_world(3, 51);
  idle.sim->set_scheduler(std::make_unique<sim::RandomScheduler>(52));
  request_termdetect(*idle.sim, 0);
  idle.sim->run(400'000, [](Simulator& s) {
    return s.process_as<TermDetectProcess>(0).detector().done();
  });
  const int idle_waves =
      idle.sim->process_as<TermDetectProcess>(0).detector().waves_used();

  auto busy = token_world(3, 51);
  for (int t = 0; t < 6; ++t) busy.apps[0]->held.push_back(20);
  busy.sim->set_scheduler(std::make_unique<sim::RandomScheduler>(52));
  request_termdetect(*busy.sim, 0);
  busy.sim->run(4'000'000, [](Simulator& s) {
    return s.process_as<TermDetectProcess>(0).detector().done();
  });
  const int busy_waves =
      busy.sim->process_as<TermDetectProcess>(0).detector().waves_used();
  EXPECT_GT(busy_waves, idle_waves);
}

}  // namespace
}  // namespace snapstab::core
