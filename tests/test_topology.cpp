// test_topology.cpp — invariants of the graph-parametric topology layer.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/fenwick.hpp"
#include "core/stack.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace snapstab::sim {
namespace {

std::vector<Topology> builtin_topologies() {
  std::vector<Topology> out;
  for (int n : {2, 3, 4, 7}) out.push_back(Topology::complete(n));
  for (int n : {2, 3, 5, 8}) out.push_back(Topology::ring(n));
  for (int n : {2, 4, 9}) out.push_back(Topology::line(n));
  for (int n : {2, 3, 6, 10}) out.push_back(Topology::star(n));
  for (std::uint64_t seed : {1u, 2u, 3u})
    out.push_back(Topology::random_tree(12, seed));
  out.push_back(Topology::from_edges(
      5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}}, "house"));
  return out;
}

// peer_of / index_of round-trip, local-index bijectivity, and edge
// addressing consistency — on every built-in topology.
TEST(Topology, LocalNumberingRoundTripsOnEveryBuilder) {
  for (const Topology& t : builtin_topologies()) {
    SCOPED_TRACE(t.name() + "/n=" + std::to_string(t.process_count()));
    int directed = 0;
    for (ProcessId p = 0; p < t.process_count(); ++p) {
      std::set<ProcessId> peers;
      for (int k = 0; k < t.degree(p); ++k) {
        const ProcessId q = t.peer_of(p, k);
        ASSERT_NE(q, p);
        EXPECT_TRUE(peers.insert(q).second) << "duplicate neighbor";
        EXPECT_EQ(t.index_of(p, q), k);
        EXPECT_TRUE(t.adjacent(p, q));
        EXPECT_TRUE(t.adjacent(q, p));

        const EdgeId out = t.out_edge(p, k);
        EXPECT_EQ(t.edge_src(out), p);
        EXPECT_EQ(t.edge_dst(out), q);
        EXPECT_EQ(t.edge_index_at_src(out), k);
        EXPECT_EQ(t.edge_between(p, q), out);

        const EdgeId in = t.in_edge(p, k);
        EXPECT_EQ(t.edge_src(in), q);
        EXPECT_EQ(t.edge_dst(in), p);
        EXPECT_EQ(t.edge_index_at_dst(in), k);
        EXPECT_EQ(t.edge_between(q, p), in);
      }
      directed += t.degree(p);
    }
    EXPECT_EQ(t.edge_count(), directed);
  }
}

TEST(Topology, EdgeIdsAreCanonicallyOrdered) {
  for (const Topology& t : builtin_topologies()) {
    SCOPED_TRACE(t.name() + "/n=" + std::to_string(t.process_count()));
    for (EdgeId e = 1; e < t.edge_count(); ++e) {
      const auto prev = std::pair{t.edge_src(e - 1), t.edge_dst(e - 1)};
      const auto curr = std::pair{t.edge_src(e), t.edge_dst(e)};
      EXPECT_LT(prev, curr);
    }
  }
}

TEST(Topology, EveryBuilderIsConnected) {
  for (const Topology& t : builtin_topologies()) {
    SCOPED_TRACE(t.name() + "/n=" + std::to_string(t.process_count()));
    EXPECT_TRUE(t.connected());
  }
}

TEST(Topology, DisconnectedGraphIsDetected) {
  const auto t = Topology::from_edges(4, {{0, 1}, {2, 3}}, "split");
  EXPECT_FALSE(t.connected());
}

TEST(Topology, CompleteKeepsTheSeedRotationNumbering) {
  // The historic dense Network numbered channels by the rotation
  // peer_of(p, k) = (p + 1 + k) mod n; protocols' local indices — and hence
  // recorded traces — depend on it.
  for (int n : {2, 3, 5, 8}) {
    const auto t = Topology::complete(n);
    for (ProcessId p = 0; p < n; ++p)
      for (int k = 0; k < n - 1; ++k)
        EXPECT_EQ(t.peer_of(p, k), (p + 1 + k) % n);
  }
}

TEST(Topology, ShapesHaveExpectedDegrees) {
  const auto star = Topology::star(7);
  EXPECT_EQ(star.degree(0), 6);
  for (ProcessId leaf = 1; leaf < 7; ++leaf) EXPECT_EQ(star.degree(leaf), 1);
  EXPECT_EQ(star.max_degree(), 6);

  const auto ring = Topology::ring(6);
  for (ProcessId p = 0; p < 6; ++p) EXPECT_EQ(ring.degree(p), 2);

  const auto line = Topology::line(5);
  EXPECT_EQ(line.degree(0), 1);
  EXPECT_EQ(line.degree(4), 1);
  for (ProcessId p = 1; p < 4; ++p) EXPECT_EQ(line.degree(p), 2);

  // A tree on n nodes has n-1 undirected links = 2(n-1) directed edges.
  const auto tree = Topology::random_tree(20, 42);
  EXPECT_EQ(tree.edge_count(), 2 * 19);
  EXPECT_TRUE(tree.connected());
}

TEST(Topology, RandomTreeIsDeterministicInSeed) {
  const auto a = Topology::random_tree(15, 9);
  const auto b = Topology::random_tree(15, 9);
  const auto c = Topology::random_tree(15, 10);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  bool differs_from_c = a.edge_count() != c.edge_count();
  for (EdgeId e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.edge_src(e), b.edge_src(e));
    EXPECT_EQ(a.edge_dst(e), b.edge_dst(e));
    if (!differs_from_c &&
        (a.edge_src(e) != c.edge_src(e) || a.edge_dst(e) != c.edge_dst(e)))
      differs_from_c = true;
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(FenwickSet, CountAndSelect) {
  FenwickSet set;
  set.reset(10);
  EXPECT_EQ(set.count(), 0);
  for (int i : {7, 2, 9, 0}) set.add(i, 1);
  EXPECT_EQ(set.count(), 4);
  EXPECT_EQ(set.kth(0), 0);
  EXPECT_EQ(set.kth(1), 2);
  EXPECT_EQ(set.kth(2), 7);
  EXPECT_EQ(set.kth(3), 9);
  set.add(2, -1);
  EXPECT_EQ(set.count(), 3);
  EXPECT_EQ(set.kth(1), 7);
}

// --- protocols over sparse topologies -------------------------------------

std::unique_ptr<Simulator> pif_world_on(Topology topo, std::uint64_t seed) {
  const int n = topo.process_count();
  auto sim = std::make_unique<Simulator>(std::move(topo), std::size_t{1}, seed);
  for (ProcessId p = 0; p < n; ++p)
    sim->add_process(std::make_unique<core::PifProcess>(
        sim->topology().degree(p), /*channel_capacity=*/1));
  return sim;
}

// PIF runs unmodified on any connected graph: processes only speak local
// channel indices. The initiator's handshake with each neighbor completes
// and it decides.
TEST(TopologySim, PifCompletesOnSparseTopologies) {
  std::vector<Topology> shapes;
  shapes.push_back(Topology::ring(8));
  shapes.push_back(Topology::line(6));
  shapes.push_back(Topology::star(9));
  shapes.push_back(Topology::random_tree(10, 4));
  for (Topology& topo : shapes) {
    SCOPED_TRACE(topo.name());
    auto sim = pif_world_on(std::move(topo), 17);
    sim->process_as<core::PifProcess>(0).pif().request(Value::integer(42));
    sim->set_scheduler(std::make_unique<sim::RandomScheduler>(17));
    const auto reason =
        sim->run(500'000, [](Simulator& s) {
          return s.process_as<core::PifProcess>(0).pif().done();
        });
    EXPECT_EQ(reason, Simulator::StopReason::Predicate);
    // Every neighbor of the initiator saw the broadcast.
    int recv_brd = 0;
    for (const auto& e : sim->log().events())
      if (e.kind == ObsKind::RecvBrd && e.value == Value::integer(42))
        ++recv_brd;
    EXPECT_GE(recv_brd, sim->topology().degree(0));
  }
}

// Same seed ⇒ same execution, also on sparse topologies.
TEST(TopologySim, SparseRunsAreDeterministic) {
  const auto run_once = [] {
    auto sim = pif_world_on(Topology::random_tree(9, 5), 23);
    sim->process_as<core::PifProcess>(3).pif().request(Value::integer(1));
    sim->set_scheduler(std::make_unique<sim::RandomScheduler>(
        23, LossOptions{.rate = 0.2, .max_consecutive = 4}));
    sim->run(50'000);
    std::vector<std::uint64_t> digest{sim->metrics().deliveries,
                                      sim->metrics().adversary_losses,
                                      sim->metrics().sends,
                                      sim->log().size()};
    return digest;
  };
  EXPECT_EQ(run_once(), run_once());
}

// The channel-occupancy hooks keep the deliverable index exact even when
// tests stuff channels behind the scheduler's back.
TEST(TopologySim, ExternalChannelMutationIsTracked) {
  auto sim = pif_world_on(Topology::ring(4), 3);
  EXPECT_EQ(sim->deliverable_count(), 0);
  sim->network().channel(0, 1).push(Message::naive_brd(Value::none()));
  EXPECT_EQ(sim->deliverable_count(), 1);
  EXPECT_EQ(sim->nth_deliverable(0), sim->topology().edge_between(0, 1));
  sim->network().channel(0, 1).clear();
  EXPECT_EQ(sim->deliverable_count(), 0);
}

TEST(TopologySim, NonAdjacentChannelAccessAborts) {
  auto topo = Topology::line(3);  // 0-1-2: no channel 0 -> 2
  Network net(std::move(topo), 1);
  EXPECT_DEATH(net.channel(0, 2), "no channel between these processes");
}

}  // namespace
}  // namespace snapstab::sim
