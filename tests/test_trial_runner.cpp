// test_trial_runner.cpp — the parallel trial harness: every trial index runs
// exactly once whatever the trials-to-threads ratio, and aggregates are
// bit-identical for any worker count (the determinism contract the
// experiment binaries' JSON output rests on).
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "../bench/trial_runner.hpp"
#include "core/specs.hpp"
#include "core/stack.hpp"
#include "sim/fuzz.hpp"
#include "sim/simulator.hpp"

namespace snapstab::bench {
namespace {

TEST(TrialRunner, EveryIndexRunsExactlyOnceWhenTrialsDontDivide) {
  // 7 trials on 3 threads: the uneven tail must be neither skipped nor
  // double-counted.
  std::atomic<int> calls{0};
  const auto results = run_trials(7, 3, [&](int t) {
    calls.fetch_add(1);
    return t * 10;
  });
  EXPECT_EQ(calls.load(), 7);
  ASSERT_EQ(results.size(), 7u);
  for (int t = 0; t < 7; ++t)
    EXPECT_EQ(results[static_cast<std::size_t>(t)], t * 10) << "trial " << t;
}

TEST(TrialRunner, MoreThreadsThanTrialsAndZeroTrialsAreSafe) {
  const auto results = run_trials(2, 8, [](int t) { return t + 1; });
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], 1);
  EXPECT_EQ(results[1], 2);
  EXPECT_TRUE(run_trials(0, 4, [](int t) { return t; }).empty());
}

// A miniature experiment cell: fuzz + run + check per seed, returning the
// plain aggregate data a bench JSON would carry.
struct TrialOutcome {
  bool completed = false;
  bool violation = false;
  std::uint64_t steps = 0;
  std::uint64_t sends = 0;
};

TrialOutcome run_one_trial(int t) {
  TrialOutcome out;
  const auto seed = 400u + static_cast<std::uint64_t>(t);
  sim::Simulator world(3, 1, seed);
  for (int i = 0; i < 3; ++i)
    world.add_process(std::make_unique<core::PifProcess>(2, 1));
  Rng rng(seed * 3);
  sim::fuzz(world, rng);
  world.set_scheduler(std::make_unique<sim::RandomScheduler>(seed));
  core::request_pif(world, 0, Value::integer(t));
  const auto reason = world.run(500'000, [](sim::Simulator& s) {
    return s.process_as<core::PifProcess>(0).pif().done();
  });
  out.completed = reason == sim::Simulator::StopReason::Predicate;
  out.steps = world.step_count();
  out.sends = world.metrics().sends;
  const auto report = core::check_pif_spec(
      world, {.require_termination = false, .require_start = false});
  out.violation = !report.ok();
  return out;
}

std::string aggregate_json(int threads) {
  const auto outcomes = run_trials(7, threads, run_one_trial);
  // Fold in trial order, exactly like the exp_* binaries do.
  std::uint64_t steps = 0;
  std::uint64_t sends = 0;
  int completed = 0;
  int violations = 0;
  for (const auto& out : outcomes) {
    steps += out.steps;
    sends += out.sends;
    completed += out.completed ? 1 : 0;
    violations += out.violation ? 1 : 0;
  }
  return "{\"completed\":" + std::to_string(completed) +
         ",\"violations\":" + std::to_string(violations) +
         ",\"steps\":" + std::to_string(steps) +
         ",\"sends\":" + std::to_string(sends) + "}";
}

TEST(TrialRunner, AggregateJsonIsIdenticalForOneAndThreeThreads) {
  // 7 trials, 7 % 3 != 0: the aggregate JSON must not depend on the worker
  // count — same cells, same fold order, worker-private string pools.
  const std::string sequential = aggregate_json(1);
  const std::string parallel = aggregate_json(3);
  EXPECT_EQ(sequential, parallel);
  // And the trials actually did something.
  EXPECT_NE(sequential.find("\"completed\":7"), std::string::npos)
      << sequential;
}

}  // namespace
}  // namespace snapstab::bench
