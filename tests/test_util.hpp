// test_util.hpp — shared helpers for the simulator-level tests.
#ifndef SNAPSTAB_TESTS_TEST_UTIL_HPP
#define SNAPSTAB_TESTS_TEST_UTIL_HPP

#include <functional>
#include <vector>

#include "sim/process.hpp"

namespace snapstab::sim {

// A fully scriptable process: counts activations, stores received messages,
// and lets tests inject arbitrary tick behaviour.
class ProbeProcess final : public Process {
 public:
  int ticks = 0;
  int received = 0;
  std::vector<std::pair<int, Message>> inbox;  // (channel, message)
  bool enabled = true;
  bool busy_flag = false;
  std::function<void(Context&)> tick_fn;
  std::function<void(Context&, int, const Message&)> message_fn;

  void on_tick(Context& ctx) override {
    ++ticks;
    if (tick_fn) tick_fn(ctx);
  }
  void on_message(Context& ctx, int ch, const Message& m) override {
    ++received;
    inbox.emplace_back(ch, m);
    if (message_fn) message_fn(ctx, ch, m);
  }
  bool tick_enabled() const override { return enabled; }
  bool busy() const override { return busy_flag; }
  void randomize(Rng&) override {}
};

}  // namespace snapstab::sim

#endif  // SNAPSTAB_TESTS_TEST_UTIL_HPP
