// test_value_message.cpp — payload Value semantics and wire Message forms.
#include <gtest/gtest.h>

#include "msg/message.hpp"
#include "msg/value.hpp"

namespace snapstab {
namespace {

TEST(Value, DefaultIsNone) {
  Value v;
  EXPECT_TRUE(v.is_none());
  EXPECT_FALSE(v.is_int());
  EXPECT_FALSE(v.is_token());
  EXPECT_FALSE(v.is_text());
  EXPECT_EQ(v, Value::none());
}

TEST(Value, IntAccessors) {
  const Value v = Value::integer(-42);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), -42);
  EXPECT_EQ(v.as_token(Token::No), Token::No);  // fallback on mismatch
  EXPECT_EQ(v.as_text(), "");
}

TEST(Value, TokenAccessors) {
  const Value v = Value::token(Token::Ask);
  EXPECT_TRUE(v.is_token());
  EXPECT_TRUE(v.is_token(Token::Ask));
  EXPECT_FALSE(v.is_token(Token::Exit));
  EXPECT_EQ(v.as_token(), Token::Ask);
  EXPECT_EQ(v.as_int(7), 7);  // fallback on mismatch
}

TEST(Value, TextAccessors) {
  const Value v = Value::text("how old are you?");
  EXPECT_TRUE(v.is_text());
  EXPECT_EQ(v.as_text(), "how old are you?");
  EXPECT_EQ(v.as_int(-1), -1);
}

TEST(Value, EqualityDistinguishesAlternatives) {
  EXPECT_NE(Value::integer(0), Value::none());
  EXPECT_NE(Value::integer(1), Value::integer(2));
  EXPECT_NE(Value::token(Token::Yes), Value::token(Token::No));
  EXPECT_NE(Value::text("a"), Value::text("b"));
  EXPECT_EQ(Value::text("a"), Value::text("a"));
  // An int and a token never compare equal, whatever their payloads.
  EXPECT_NE(Value::integer(0), Value::token(Token::Ok));
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value::none().to_string(), "-");
  EXPECT_EQ(Value::integer(5).to_string(), "5");
  EXPECT_EQ(Value::token(Token::ExitCs).to_string(), "EXITCS");
  EXPECT_EQ(Value::text("hi").to_string(), "\"hi\"");
}

TEST(Value, RandomCoversAllAlternatives) {
  Rng rng(3);
  bool none = false, ints = false, tok = false, text = false;
  for (int i = 0; i < 300; ++i) {
    const Value v = Value::random(rng);
    none |= v.is_none();
    ints |= v.is_int();
    tok |= v.is_token();
    text |= v.is_text();
  }
  EXPECT_TRUE(none && ints && tok && text);
}

TEST(TokenNames, AllDistinct) {
  EXPECT_STREQ(token_name(Token::IdlQuery), "IDL");
  EXPECT_STREQ(token_name(Token::Ask), "ASK");
  EXPECT_STREQ(token_name(Token::Exit), "EXIT");
  EXPECT_STREQ(token_name(Token::ExitCs), "EXITCS");
  EXPECT_STREQ(token_name(Token::Yes), "YES");
  EXPECT_STREQ(token_name(Token::No), "NO");
  EXPECT_STREQ(token_name(Token::Ok), "OK");
}

TEST(Message, PifFactoryPopulatesQuadruple) {
  const Message m = Message::pif(Value::text("b"), Value::integer(9), 2, 3);
  EXPECT_EQ(m.kind, MsgKind::Pif);
  EXPECT_EQ(m.b, Value::text("b"));
  EXPECT_EQ(m.f, Value::integer(9));
  EXPECT_EQ(m.state, 2);
  EXPECT_EQ(m.neig_state, 3);
}

TEST(Message, BaselineFactories) {
  EXPECT_EQ(Message::naive_brd(Value::none()).kind, MsgKind::NaiveBrd);
  EXPECT_EQ(Message::naive_fck(Value::none()).kind, MsgKind::NaiveFck);
  const Message sb = Message::seq_brd(Value::integer(1), 5);
  EXPECT_EQ(sb.kind, MsgKind::SeqBrd);
  EXPECT_EQ(sb.state, 5);
  EXPECT_EQ(Message::seq_fck(Value::none(), 3).state, 3);
}

TEST(Message, ToStringMentionsKindAndFlags) {
  const Message m = Message::pif(Value::token(Token::Ask), Value::none(), 1,
                                 4);
  const std::string s = m.to_string();
  EXPECT_NE(s.find("PIF"), std::string::npos);
  EXPECT_NE(s.find("ASK"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("4"), std::string::npos);
}

TEST(Message, RandomRespectsFlagLimit) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Message m = Message::random(rng, 4);
    EXPECT_GE(m.state, 0);
    EXPECT_LE(m.state, 4);
    EXPECT_GE(m.neig_state, 0);
    EXPECT_LE(m.neig_state, 4);
  }
}

TEST(Message, RandomWildCoversOutOfDomain) {
  Rng rng(5);
  bool out_of_domain = false;
  for (int i = 0; i < 200; ++i) {
    const Message m = Message::random(rng, 4, /*wild=*/true);
    if (m.state < 0 || m.state > 4) out_of_domain = true;
  }
  EXPECT_TRUE(out_of_domain);
}

}  // namespace
}  // namespace snapstab
