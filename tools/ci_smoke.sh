#!/usr/bin/env bash
# ci_smoke.sh — run a bench/experiment smoke and validate its JSON emission.
#
#   tools/ci_smoke.sh <json-path> <command> [args...]
#
# Runs the command, then fails the step if <json-path> is missing or not
# well-formed JSON (python3 -m json.tool is the validator, mirroring the
# micro_bench smoke from PR 4). Every CI smoke step goes through this
# script so a binary that silently writes truncated or empty JSON — the
# exp_faults gap this script closed — cannot pass.
set -euo pipefail

if [ "$#" -lt 2 ]; then
  echo "usage: $0 <json-path> <command> [args...]" >&2
  exit 2
fi

out="$1"
shift

"$@"

if [ ! -s "$out" ]; then
  echo "ci_smoke: $out missing or empty after: $*" >&2
  exit 1
fi
python3 -m json.tool "$out" > /dev/null
echo "ci_smoke: $out OK"
