// mutant_hunter — enumerate every registered mutation point, drive each
// mutant through the cheapest-first kill ladder, and emit the kill matrix.
//
//   mutant_hunter [--smoke] [--json <path>] [--list]
//
// The ladder (tests/mutate_scenarios.hpp) runs stages in fixed order —
// spec checkers, golden traces, seeded fuzz, a shortened chaos campaign —
// and stops at the first config that fails with the mutant armed; that
// failure is the kill. Within each stage, configs whose name shares the
// mutant's core prefix run first (a PIF mutant meets the PIF specs before
// anything else), which keeps steps-to-kill honest about the cheapest
// killing evidence.
//
// Exit status:
//   0 — every non-equivalent mutant killed, every MUTATION_EQUIVALENT
//       survivor confirmed surviving;
//   1 — a non-equivalent mutant survived the whole ladder (add a killing
//       config or annotate it MUTATION_EQUIVALENT with a proof comment),
//       an "equivalent" mutant was killed (the annotation is wrong), the
//       registry drifted from the expected census, or the baseline failed.
//
// --smoke hunts only the first two mutants of each core (CI's quick job);
// --json writes the matrix (the full run is a Release-job artifact).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mutate/mutate.hpp"
#include "mutate_scenarios.hpp"

namespace {

using snapstab::mutate::ActiveSet;
using snapstab::mutate::Point;
using snapstab::mutatetest::KillConfig;
using snapstab::mutatetest::Outcome;
using snapstab::mutatetest::kill_configs;

struct Verdict {
  const Point* point = nullptr;
  bool killed = false;
  std::string stage;
  std::string config;
  std::string detail;
  std::uint64_t steps_to_kill = 0;  // steps burned up to and incl. the kill
  int configs_tried = 0;
};

const char* core_prefix(const Point& p) {
  // "pif.a1.stale_state" -> "pif." (the registered census prefixes).
  static thread_local std::string prefix;
  const char* dot = std::strchr(p.id, '.');
  prefix.assign(p.id, dot ? static_cast<std::size_t>(dot - p.id) + 1
                          : std::strlen(p.id));
  return prefix.c_str();
}

// The ladder for one mutant: stage order fixed, and within each stage the
// configs naming the mutant's own core run before the cross-cutting ones.
std::vector<const KillConfig*> ladder_for(const Point& p) {
  static const char* kStages[] = {"spec", "golden", "fuzz", "chaos"};
  const std::string prefix = core_prefix(p);   // e.g. "pif."
  const std::string core = prefix.substr(0, prefix.size() - 1);  // "pif"
  std::vector<const KillConfig*> order;
  for (const char* stage : kStages) {
    for (int pass = 0; pass < 2; ++pass)
      for (const auto& cfg : kill_configs()) {
        if (std::strcmp(cfg.stage, stage) != 0) continue;
        const bool mine =
            std::string(cfg.name).find("." + core + ".") != std::string::npos ||
            std::string(cfg.name).find("." + core) != std::string::npos;
        if ((pass == 0) == mine) order.push_back(&cfg);
      }
  }
  return order;
}

Verdict hunt(const Point& p) {
  Verdict v;
  v.point = &p;
  snapstab::mutate::ScopedMutant armed(p.id);
  for (const KillConfig* cfg : ladder_for(p)) {
    const Outcome out = cfg->run();
    ++v.configs_tried;
    v.steps_to_kill += out.steps;
    if (!out.pass) {
      v.killed = true;
      v.stage = cfg->stage;
      v.config = cfg->name;
      v.detail = out.detail;
      return v;
    }
  }
  return v;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_matrix(const char* path, const std::vector<Verdict>& verdicts,
                  int killed, int survivors, int equivalents) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::fprintf(stderr, "mutant_hunter: cannot write %s\n", path);
    return;
  }
  std::fprintf(f,
               "{\n  \"registered\": %zu,\n  \"killed\": %d,\n"
               "  \"survivors\": %d,\n  \"equivalent\": %d,\n"
               "  \"mutants\": [\n",
               verdicts.size(), killed, survivors, equivalents);
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const Verdict& v = verdicts[i];
    std::fprintf(
        f,
        "    {\"id\": \"%s\", \"file\": \"%s\", \"line\": %d,\n"
        "     \"live\": \"%s\", \"mutant\": \"%s\",\n"
        "     \"equivalent\": %s, \"killed\": %s, \"stage\": \"%s\",\n"
        "     \"config\": \"%s\", \"detail\": \"%s\",\n"
        "     \"configs_tried\": %d, \"steps_to_kill\": %llu}%s\n",
        v.point->id, json_escape(v.point->file).c_str(), v.point->line,
        json_escape(v.point->live).c_str(),
        json_escape(v.point->mutant).c_str(),
        v.point->equivalent ? "true" : "false", v.killed ? "true" : "false",
        v.stage.c_str(), v.config.c_str(), json_escape(v.detail).c_str(),
        v.configs_tried,
        static_cast<unsigned long long>(v.steps_to_kill),
        i + 1 < verdicts.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool list_only = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strcmp(argv[i], "--list") == 0) list_only = true;
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: mutant_hunter [--smoke] [--json <path>] [--list]\n");
      return 2;
    }
  }

  // Registry sanity: the census must match the source-of-truth table.
  const auto dups = snapstab::mutate::duplicate_ids();
  if (!dups.empty()) {
    for (const auto& d : dups)
      std::fprintf(stderr, "mutant_hunter: duplicate mutation id %s\n",
                   d.c_str());
    return 1;
  }
  const auto points = snapstab::mutate::all_points();
  if (points.size() !=
      static_cast<std::size_t>(snapstab::mutate::kMutationPointCount)) {
    std::fprintf(stderr,
                 "mutant_hunter: registry drift: %zu points registered, "
                 "census says %d — update kExpectedCoreCounts\n",
                 points.size(), snapstab::mutate::kMutationPointCount);
    return 1;
  }
  for (const auto& expect : snapstab::mutate::kExpectedCoreCounts) {
    int n = 0, eq = 0;
    for (const Point* p : points)
      if (std::strncmp(p->id, expect.prefix, std::strlen(expect.prefix)) ==
          0) {
        ++n;
        if (p->equivalent) ++eq;
      }
    if (n != expect.points || eq != expect.equivalent) {
      std::fprintf(stderr,
                   "mutant_hunter: census drift under %s: %d points (%d "
                   "equivalent), expected %d (%d)\n",
                   expect.prefix, n, eq, expect.points, expect.equivalent);
      return 1;
    }
  }

  if (list_only) {
    for (const Point* p : points)
      std::printf("%-28s %s %s:%d\n    live:   %s\n    mutant: %s\n", p->id,
                  p->equivalent ? "[equivalent]" : "            ", p->file,
                  p->line, p->live, p->mutant);
    return 0;
  }

  // Baseline: with nothing armed, every config must pass — otherwise kills
  // would be indistinguishable from a broken ladder.
  ActiveSet::disarm_all();
  for (const auto& cfg : kill_configs()) {
    const Outcome out = cfg.run();
    if (!out.pass) {
      std::fprintf(stderr,
                   "mutant_hunter: BASELINE FAILURE in %s: %s\n"
                   "(the ladder itself is broken; fix before hunting)\n",
                   cfg.name, out.detail.c_str());
      return 1;
    }
  }
  std::printf("baseline: %zu configs pass disarmed\n", kill_configs().size());

  // Select mutants: full registry, or --smoke's two-per-core sample.
  std::vector<const Point*> selected;
  if (smoke) {
    std::string last_prefix;
    int taken = 0;
    for (const Point* p : points) {  // sorted by id => grouped by prefix
      const std::string prefix = core_prefix(*p);
      if (prefix != last_prefix) {
        last_prefix = prefix;
        taken = 0;
      }
      if (taken < 2) {
        selected.push_back(p);
        ++taken;
      }
    }
  } else {
    selected.assign(points.begin(), points.end());
  }

  std::vector<Verdict> verdicts;
  int killed = 0, survivors = 0, equivalents = 0, false_equivalents = 0;
  for (const Point* p : selected) {
    Verdict v = hunt(*p);
    if (p->equivalent) {
      ++equivalents;
      if (v.killed) {
        ++false_equivalents;
        std::printf("%-28s KILLED by %-22s  ** declared equivalent! **\n",
                    p->id, v.config.c_str());
      } else {
        std::printf("%-28s equivalent, survives (as proven)\n", p->id);
      }
    } else if (v.killed) {
      ++killed;
      std::printf("%-28s killed  %-8s %-24s %9llu steps\n", p->id,
                  v.stage.c_str(), v.config.c_str(),
                  static_cast<unsigned long long>(v.steps_to_kill));
    } else {
      ++survivors;
      std::printf("%-28s SURVIVED the whole ladder (%d configs)\n", p->id,
                  v.configs_tried);
    }
    verdicts.push_back(std::move(v));
  }

  std::printf(
      "\nkill matrix: %zu hunted, %d killed, %d survivors, %d equivalent\n",
      selected.size(), killed, survivors, equivalents);
  if (json_path)
    write_matrix(json_path, verdicts, killed, survivors, equivalents);

  if (survivors > 0) {
    std::fprintf(stderr,
                 "mutant_hunter: %d non-equivalent mutant(s) survived — add "
                 "a killing config or prove equivalence\n",
                 survivors);
    return 1;
  }
  if (false_equivalents > 0) {
    std::fprintf(stderr,
                 "mutant_hunter: %d declared-equivalent mutant(s) were "
                 "killed — the equivalence annotation is wrong\n",
                 false_equivalents);
    return 1;
  }
  return 0;
}
