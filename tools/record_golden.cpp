// record_golden — dumps deterministic reference traces for the equivalence
// suite (tests/test_equivalence.cpp).
//
// The traces under tests/golden/ were produced by the pre-topology seed
// (dense n×n Network, scanning schedulers). The refactored engine must
// reproduce them bit-for-bit on complete topologies: same (code, seed,
// configuration) ⇒ same observation log and metrics. Re-run this tool only
// to regenerate the goldens after an *intentional* semantics change, and say
// so in the commit message.
//
// Usage: record_golden <output-directory>
#include <cstdio>
#include <string>

#include "../tests/golden_scenarios.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-directory>\n", argv[0]);
    return 1;
  }
  const std::string dir = argv[1];
  for (const auto& scenario : snapstab::golden::scenarios()) {
    auto sim = scenario.run();
    const std::string path = dir + "/" + scenario.file;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    const std::string trace = snapstab::golden::render(*sim);
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu events)\n", path.c_str(), sim->log().size());
  }
  return 0;
}
